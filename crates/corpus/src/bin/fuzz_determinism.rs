//! Command-line front end of the cross-path determinism fuzzer.
//!
//! ```text
//! fuzz-determinism [--circuits N] [--base-seed S] [--exec-seeds K] [--no-shrink] [--quiet]
//! ```
//!
//! Sweeps `N` sampled corpus circuits through the full
//! warm/cold × pipelined/serial × cached/uncached × 1/2/4-lane matrix and
//! exits non-zero on the first byte-identity divergence, printing the
//! minimized spec and a replay token. Set `ONEPERC_FUZZ_REPLAY` to such a
//! token to re-check exactly one circuit instead of sampling.
//!
//! Normally invoked as `cargo xtask fuzz-determinism` (which builds it in
//! release mode and forwards the flags verbatim).

use std::process::ExitCode;

use oneperc_corpus::fuzz::{run_fuzz, run_replay, FuzzOptions, Replay, REPLAY_ENV};

const USAGE: &str = "usage: fuzz-determinism [--circuits N] [--base-seed S] \
                     [--exec-seeds K] [--no-shrink] [--quiet]";

fn parse_options() -> Result<FuzzOptions, String> {
    let mut options = FuzzOptions { progress: true, ..FuzzOptions::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--circuits" => {
                options.circuits = value("--circuits")?
                    .parse()
                    .map_err(|_| "--circuits takes an integer".to_string())?;
            }
            "--base-seed" => {
                options.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|_| "--base-seed takes an integer".to_string())?;
            }
            "--exec-seeds" => {
                options.exec_seeds = value("--exec-seeds")?
                    .parse()
                    .map_err(|_| "--exec-seeds takes an integer".to_string())?;
                if options.exec_seeds == 0 {
                    return Err("--exec-seeds must be at least 1".to_string());
                }
            }
            "--no-shrink" => options.shrink = false,
            "--quiet" => options.progress = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let replay = match Replay::from_env() {
        Ok(replay) => replay,
        Err(message) => {
            eprintln!("{REPLAY_ENV}: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &replay {
        Some(replay) => {
            println!(
                "replaying {} (circuit seed {}, exec seeds {:?})",
                replay.spec, replay.circuit_seed, replay.exec_seeds
            );
            run_replay(replay, &options)
        }
        None => run_fuzz(&options),
    };
    match result {
        Ok(stats) => {
            println!("determinism fuzz clean: {stats}");
            ExitCode::SUCCESS
        }
        Err(divergence) => {
            eprintln!("{divergence}");
            ExitCode::FAILURE
        }
    }
}
