//! Bounded determinism-fuzz smoke for tier-1 `cargo test -q`.
//!
//! The full corpus sweep (200+ circuits, release mode) runs as its own CI
//! job via `cargo xtask fuzz-determinism`; this test pins a fixed
//! four-seed slice of the same corpus through the same 24-shape path
//! matrix so corpus/compiler drift fails loudly in every debug test run,
//! sized for a ~30 s debug budget.

use oneperc_corpus::fuzz::{run_fuzz, run_replay, FuzzOptions, Replay};

#[test]
fn bounded_corpus_slice_is_byte_identical_across_all_paths() {
    let options = FuzzOptions {
        circuits: 4,
        base_seed: FuzzOptions::default().base_seed,
        exec_seeds: 1,
        shrink: true,
        progress: false,
    };
    let stats = run_fuzz(&options).unwrap_or_else(|divergence| {
        panic!("determinism divergence in the smoke slice:\n{divergence}")
    });
    assert_eq!(stats.circuits + stats.skipped, 4);
    assert!(stats.circuits >= 3, "smoke slice mostly compiles: {stats}");
    assert_eq!(stats.executions, stats.circuits * 25);
}

#[test]
fn replay_path_checks_one_pinned_circuit() {
    // The replay workflow end to end, on a deliberately tiny spec: parse a
    // token, re-check it through the full matrix, expect it clean.
    let replay = Replay::parse("rev:w4,g12,s2@11:5").expect("valid token");
    let stats = run_replay(&replay, &FuzzOptions { shrink: false, ..FuzzOptions::default() })
        .unwrap_or_else(|divergence| panic!("pinned replay diverged:\n{divergence}"));
    assert_eq!(stats.circuits, 1);
    assert_eq!(stats.executions, 25);
}
