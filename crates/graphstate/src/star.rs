//! Star-like resource states.
//!
//! Photonic hardware scales up by periodically generating small, identical
//! entangled states and merging them with fusions. The states considered in
//! the paper are *star-like*: one root qubit of degree `n-1` connected to
//! `n-1` leaf qubits (equivalently, a GHZ state up to local Cliffords).

use crate::graph::{GraphState, VertexId};

/// A star-like resource state embedded in a [`GraphState`].
///
/// The struct records which vertex of the host graph is the root and which
/// are the leaves, so the fusion strategy can distinguish *leaf-leaf* from
/// *root-leaf* fusions.
///
/// # Example
///
/// ```
/// use graphstate::{GraphState, StarState};
///
/// let mut g = GraphState::new();
/// let star = StarState::instantiate(&mut g, 4);
/// assert_eq!(star.size(), 4);
/// assert_eq!(g.degree(star.root()), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarState {
    root: VertexId,
    leaves: Vec<VertexId>,
}

impl StarState {
    /// Allocates a fresh `size`-qubit star (1 root, `size - 1` leaves) inside
    /// the host graph and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics when `size < 2`: a star needs at least a root and one leaf.
    pub fn instantiate(host: &mut GraphState, size: usize) -> Self {
        assert!(size >= 2, "a star resource state needs at least 2 qubits");
        let root = host.add_vertex();
        let leaves: Vec<VertexId> = (1..size)
            .map(|_| {
                let leaf = host.add_vertex();
                host.add_edge(root, leaf);
                leaf
            })
            .collect();
        StarState { root, leaves }
    }

    /// Creates a handle from pre-existing vertices without touching the host
    /// graph. Used after rewrites (e.g. local complementation recovery) that
    /// re-establish a star shape on existing qubits.
    pub fn from_parts(root: VertexId, leaves: Vec<VertexId>) -> Self {
        StarState { root, leaves }
    }

    /// The root (high-degree) qubit.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The leaf qubits in allocation order.
    pub fn leaves(&self) -> &[VertexId] {
        &self.leaves
    }

    /// Total number of qubits (root + leaves).
    pub fn size(&self) -> usize {
        1 + self.leaves.len()
    }

    /// Maximum vertex degree of the star (i.e. the number of leaves). This is
    /// the quantity compared against the target lattice degree when deciding
    /// whether resource states have *sufficient degree* (Section 4.1).
    pub fn max_degree(&self) -> usize {
        self.leaves.len()
    }

    /// Returns `true` when `v` is one of this star's leaves.
    pub fn is_leaf(&self, v: VertexId) -> bool {
        self.leaves.contains(&v)
    }

    /// Returns `true` when `v` is this star's root.
    pub fn is_root(&self, v: VertexId) -> bool {
        self.root == v
    }

    /// All qubits of the star: the root followed by the leaves.
    pub fn qubits(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.size());
        out.push(self.root);
        out.extend_from_slice(&self.leaves);
        out
    }

    /// Checks that the host graph still realizes this star exactly (root
    /// connected to every leaf, no leaf-leaf edges, correct degrees).
    pub fn is_intact(&self, host: &GraphState) -> bool {
        if host.degree(self.root) != Some(self.leaves.len()) {
            return false;
        }
        for &leaf in &self.leaves {
            if host.degree(leaf) != Some(1) || !host.has_edge(self.root, leaf) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_builds_star_topology() {
        let mut g = GraphState::new();
        let star = StarState::instantiate(&mut g, 6);
        assert_eq!(star.size(), 6);
        assert_eq!(star.max_degree(), 5);
        assert!(star.is_intact(&g));
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        for &leaf in star.leaves() {
            assert!(star.is_leaf(leaf));
            assert!(!star.is_root(leaf));
        }
        assert!(star.is_root(star.root()));
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn too_small_star_panics() {
        let mut g = GraphState::new();
        let _ = StarState::instantiate(&mut g, 1);
    }

    #[test]
    fn intactness_detects_damage() {
        let mut g = GraphState::new();
        let star = StarState::instantiate(&mut g, 4);
        assert!(star.is_intact(&g));
        g.remove_edge(star.root(), star.leaves()[0]);
        assert!(!star.is_intact(&g));
    }

    #[test]
    fn qubits_lists_root_first() {
        let mut g = GraphState::new();
        let star = StarState::instantiate(&mut g, 3);
        let qs = star.qubits();
        assert_eq!(qs[0], star.root());
        assert_eq!(qs.len(), 3);
    }

    #[test]
    fn local_complement_turns_star_into_clique_and_back() {
        let mut g = GraphState::new();
        let star = StarState::instantiate(&mut g, 5);
        g.local_complement(star.root()).unwrap();
        // Not a star any more: leaves are pairwise connected.
        assert!(!star.is_intact(&g));
        g.local_complement(star.root()).unwrap();
        assert!(star.is_intact(&g));
    }
}
