//! Error type shared by graph-state operations.

use std::error::Error;
use std::fmt;

/// Errors produced by operations on [`crate::GraphState`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced by the operation does not exist (or has already
    /// been removed / measured out).
    MissingVertex(usize),
    /// The two vertices passed to a pairwise operation are the same.
    SelfLoop(usize),
    /// An edge referenced by the operation does not exist.
    MissingEdge(usize, usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingVertex(v) => write!(f, "vertex {v} does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::MissingEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = GraphError::MissingVertex(3);
        assert_eq!(e.to_string(), "vertex 3 does not exist");
        let e = GraphError::SelfLoop(1);
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::MissingEdge(1, 2);
        assert!(e.to_string().contains("edge (1, 2)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
