//! Graph-state substrate for photonic measurement-based quantum computation.
//!
//! This crate provides the low-level machinery that every other layer of the
//! OnePerc reproduction is built on:
//!
//! * [`GraphState`] — an undirected simple graph whose vertices are photonic
//!   qubits, together with the stabilizer-formalism rewrite rules that matter
//!   for fusion-based photonic computing: local complementation,
//!   Pauli measurements (`Z`, `Y`, `X`) and type-II fusions (both successful
//!   and failed outcomes).
//! * [`StarState`] — the star-like resource states produced by resource-state
//!   generators on photonic hardware.
//! * [`LocalClifford`] / [`MeasBasis`] — the single-qubit byproduct frame and
//!   the basis-adjustment rules of Theorems 4.1 and 4.2 of the paper, which
//!   allow local-complementation corrections to be postponed to the end of
//!   the computation.
//! * [`DisjointSet`] — the union-find structure used by the online pass for
//!   cheap connectivity checks during percolation and renormalization.
//!
//! # Example
//!
//! ```
//! use graphstate::GraphState;
//!
//! // Build a 3-vertex path graph state 0 - 1 - 2 and measure the middle
//! // qubit in the Y basis: the result is an edge between 0 and 2.
//! let mut g = GraphState::with_vertices(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.measure_y(1);
//! assert!(g.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clifford;
mod dsu;
mod error;
mod fusion;
mod graph;
mod star;

pub use clifford::{LocalClifford, MeasBasis, Pauli};
pub use dsu::DisjointSet;
pub use error::GraphError;
pub use fusion::{FusionKind, FusionOutcome};
pub use graph::{CsrSnapshot, GraphState, VertexId};
pub use star::StarState;
