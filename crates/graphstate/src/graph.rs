//! The [`GraphState`] type: an undirected simple graph with the
//! stabilizer-formalism rewrite rules used throughout the compiler.

use std::collections::VecDeque;

use crate::error::GraphError;

/// Identifier of a vertex (photonic qubit) inside a [`GraphState`].
pub type VertexId = usize;

/// An undirected simple graph representing a stabilizer graph state.
///
/// Every vertex stands for a photonic qubit prepared in `|+>` and every edge
/// for a CZ entangling operation, so the state is the simultaneous +1
/// eigenstate of the stabilizers `X_i ⊗ Z_{N(i)}`.
///
/// Vertices are identified by dense `usize` ids. Removing a vertex (for
/// example by measuring it in the `Z` basis) leaves a hole: ids are never
/// reused, which keeps ids stable across the lifetime of a layer and lets
/// callers keep external side tables indexed by [`VertexId`].
///
/// Adjacency is stored as **sorted neighbor vectors** rather than hash
/// sets: membership tests are binary searches, iteration is a cache-friendly
/// linear scan in increasing id order, and no hashing happens anywhere on
/// the percolation hot path. Read-heavy consumers can additionally take a
/// compressed-sparse-row [`CsrSnapshot`] via [`GraphState::snapshot_csr`].
///
/// # Example
///
/// ```
/// use graphstate::GraphState;
///
/// let mut g = GraphState::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// g.add_edge(a, b);
/// assert_eq!(g.degree(a), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphState {
    /// `adj[v]` is the sorted neighbor list of vertex `v`. Removed vertices
    /// keep an empty list and are marked dead in `alive`.
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    n_alive: usize,
    n_edges: usize,
}

impl GraphState {
    /// Creates an empty graph state with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph state with `n` isolated vertices, ids `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        GraphState {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
            n_edges: 0,
        }
    }

    /// Adds a fresh isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        self.adj.len() - 1
    }

    /// Number of live (not yet removed) vertices.
    pub fn vertex_count(&self) -> usize {
        self.n_alive
    }

    /// Total number of vertex ids ever allocated (live or removed). All live
    /// ids are strictly below this bound.
    pub fn id_bound(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges currently present.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Returns `true` when vertex `v` exists and has not been removed.
    pub fn contains(&self, v: VertexId) -> bool {
        v < self.alive.len() && self.alive[v]
    }

    /// Iterator over all live vertex ids in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(v, &a)| if a { Some(v) } else { None })
    }

    /// Returns the neighbors of `v` as a sorted slice, or `None` if `v` does
    /// not exist.
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        if self.contains(v) {
            Some(&self.adj[v])
        } else {
            None
        }
    }

    /// Degree of `v`, or `None` if `v` does not exist.
    pub fn degree(&self, v: VertexId) -> Option<usize> {
        self.neighbors(v).map(<[VertexId]>::len)
    }

    /// Returns `true` when the edge `(a, b)` is present.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.contains(a) && self.contains(b) && self.adj[a].binary_search(&b).is_ok()
    }

    /// Inserts `b` into the sorted neighbor list of `a`; returns `true` when
    /// it was not already present.
    #[inline]
    fn adj_insert(&mut self, a: VertexId, b: VertexId) -> bool {
        match self.adj[a].binary_search(&b) {
            Ok(_) => false,
            Err(pos) => {
                self.adj[a].insert(pos, b);
                true
            }
        }
    }

    /// Removes `b` from the sorted neighbor list of `a`; returns `true` when
    /// it was present.
    #[inline]
    fn adj_remove(&mut self, a: VertexId, b: VertexId) -> bool {
        match self.adj[a].binary_search(&b) {
            Ok(pos) => {
                self.adj[a].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Adds the edge `(a, b)`. Adding an existing edge is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if either vertex does not exist or if `a == b`; use
    /// [`GraphState::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        self.try_add_edge(a, b).expect("add_edge: invalid endpoints");
    }

    /// Fallible version of [`GraphState::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when an endpoint does not exist
    /// and [`GraphError::SelfLoop`] when `a == b`.
    pub fn try_add_edge(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.contains(a) {
            return Err(GraphError::MissingVertex(a));
        }
        if !self.contains(b) {
            return Err(GraphError::MissingVertex(b));
        }
        if self.adj_insert(a, b) {
            self.adj_insert(b, a);
            self.n_edges += 1;
        }
        Ok(())
    }

    /// Removes the edge `(a, b)` if present; removing an absent edge is a
    /// no-op.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) {
        if self.contains(a) && self.contains(b) && self.adj_remove(a, b) {
            self.adj_remove(b, a);
            self.n_edges -= 1;
        }
    }

    /// Toggles the edge `(a, b)`: adds it when absent, removes it when
    /// present. This is the primitive used by local complementation and the
    /// fusion rewrite rules.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] / [`GraphError::SelfLoop`] on
    /// invalid endpoints.
    pub fn toggle_edge(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.contains(a) {
            return Err(GraphError::MissingVertex(a));
        }
        if !self.contains(b) {
            return Err(GraphError::MissingVertex(b));
        }
        if self.adj_insert(a, b) {
            self.adj_insert(b, a);
            self.n_edges += 1;
        } else {
            self.adj_remove(a, b);
            self.adj_remove(b, a);
            self.n_edges -= 1;
        }
        Ok(())
    }

    /// Removes vertex `v` along with all incident edges. Removing an already
    /// removed vertex is a no-op.
    pub fn remove_vertex(&mut self, v: VertexId) {
        if !self.contains(v) {
            return;
        }
        let nbrs = std::mem::take(&mut self.adj[v]);
        for &u in &nbrs {
            self.adj_remove(u, v);
            self.n_edges -= 1;
        }
        self.alive[v] = false;
        self.n_alive -= 1;
    }

    /// Applies local complementation `τ_v`: the subgraph induced by the
    /// neighborhood of `v` is complemented (existing edges between neighbors
    /// are removed, missing ones are added).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when `v` does not exist.
    pub fn local_complement(&mut self, v: VertexId) -> Result<(), GraphError> {
        if !self.contains(v) {
            return Err(GraphError::MissingVertex(v));
        }
        let nbrs = self.adj[v].clone();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                // Both endpoints are alive by construction.
                self.toggle_edge(nbrs[i], nbrs[j])
                    .expect("neighbors are alive");
            }
        }
        Ok(())
    }

    /// Measures qubit `v` in the `Z` basis, i.e. removes the vertex and its
    /// incident edges. This is how redundant qubits are eliminated when a
    /// random physical graph state is reshaped to a subgraph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when `v` does not exist.
    pub fn measure_z(&mut self, v: VertexId) -> Result<(), GraphError> {
        if !self.contains(v) {
            return Err(GraphError::MissingVertex(v));
        }
        self.remove_vertex(v);
        Ok(())
    }

    /// Measures qubit `v` in the `Y` basis: local complementation at `v`
    /// followed by removal of `v`. Up to local Cliffords on the neighborhood,
    /// this realizes the standard graph-state rewrite rule.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when `v` does not exist.
    pub fn measure_y(&mut self, v: VertexId) -> Result<(), GraphError> {
        self.local_complement(v)?;
        self.remove_vertex(v);
        Ok(())
    }

    /// Measures qubit `v` in the `X` basis using the standard rule
    /// `τ_b ∘ τ_v ∘ τ_b` with a designated *special neighbor* `b`, followed by
    /// removal of `v`.
    ///
    /// When `v` is isolated the measurement simply removes it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when `v` does not exist, or
    /// [`GraphError::MissingEdge`] when `special` is given but is not a
    /// neighbor of `v`.
    pub fn measure_x(&mut self, v: VertexId, special: Option<VertexId>) -> Result<(), GraphError> {
        if !self.contains(v) {
            return Err(GraphError::MissingVertex(v));
        }
        let b = match special {
            Some(b) => {
                if !self.has_edge(v, b) {
                    return Err(GraphError::MissingEdge(v, b));
                }
                Some(b)
            }
            // Neighbor lists are sorted, so the first entry is the minimum.
            None => self.adj[v].first().copied(),
        };
        match b {
            None => {
                self.remove_vertex(v);
            }
            Some(b) => {
                self.local_complement(b).expect("b is alive");
                self.local_complement(v).expect("v is alive");
                self.remove_vertex(v);
                self.local_complement(b).expect("b is alive");
            }
        }
        Ok(())
    }

    /// Returns the connected component containing `v` (including `v`), or an
    /// empty vector when `v` does not exist. The result is sorted.
    pub fn component(&self, v: VertexId) -> Vec<VertexId> {
        if !self.contains(v) {
            return Vec::new();
        }
        let mut seen = vec![false; self.adj.len()];
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        seen[v] = true;
        out.push(v);
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            for &w in &self.adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Returns the vertices of the largest connected component, or an empty
    /// vector for an empty graph.
    pub fn largest_component(&self) -> Vec<VertexId> {
        let mut best: Vec<VertexId> = Vec::new();
        let mut visited = vec![false; self.adj.len()];
        for v in self.vertices() {
            if visited[v] {
                continue;
            }
            let comp = self.component(v);
            for &u in &comp {
                visited[u] = true;
            }
            if comp.len() > best.len() {
                best = comp;
            }
        }
        best
    }

    /// Breadth-first shortest path from `src` to `dst` restricted to vertices
    /// for which `allowed` returns `true` (both endpoints must be allowed).
    /// Returns the vertex sequence including both endpoints, or `None` when
    /// no such path exists.
    pub fn shortest_path_filtered<F>(
        &self,
        src: VertexId,
        dst: VertexId,
        allowed: F,
    ) -> Option<Vec<VertexId>>
    where
        F: Fn(VertexId) -> bool,
    {
        if !self.contains(src) || !self.contains(dst) || !allowed(src) || !allowed(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: Vec<Option<VertexId>> = vec![None; self.adj.len()];
        let mut seen = vec![false; self.adj.len()];
        let mut queue = VecDeque::new();
        seen[src] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &w in &self.adj[u] {
                if !seen[w] && allowed(w) {
                    seen[w] = true;
                    prev[w] = Some(u);
                    if w == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Breadth-first shortest path between two vertices over the whole graph.
    pub fn shortest_path(&self, src: VertexId, dst: VertexId) -> Option<Vec<VertexId>> {
        self.shortest_path_filtered(src, dst, |_| true)
    }

    /// Returns `true` when `src` and `dst` are in the same connected
    /// component.
    pub fn connected(&self, src: VertexId, dst: VertexId) -> bool {
        if !self.contains(src) || !self.contains(dst) {
            return false;
        }
        if src == dst {
            return true;
        }
        self.component(src).binary_search(&dst).is_ok()
    }

    /// Collects all edges as `(min, max)` pairs, sorted. Mostly useful in
    /// tests and for serializing small graphs.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.n_edges);
        for v in self.vertices() {
            for &u in &self.adj[v] {
                if v < u {
                    out.push((v, u));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Takes a compressed-sparse-row snapshot of the current adjacency for
    /// read-heavy traversals (see [`CsrSnapshot`]).
    pub fn snapshot_csr(&self) -> CsrSnapshot {
        let n = self.adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * self.n_edges);
        offsets.push(0u32);
        for v in 0..n {
            if self.alive[v] {
                targets.extend(self.adj[v].iter().map(|&u| u as u32));
            }
            offsets.push(targets.len() as u32);
        }
        CsrSnapshot { offsets, targets }
    }
}

/// An immutable compressed-sparse-row view of a [`GraphState`].
///
/// All neighbor lists live in one contiguous `Vec<u32>` indexed by a
/// per-vertex offset table, which makes full-graph traversals (BFS floods,
/// component counting, percolation-style reachability sweeps) sequential
/// memory scans with no per-vertex allocation. Vertex ids match the graph
/// the snapshot was taken from; removed vertices have empty neighbor lists.
///
/// # Example
///
/// ```
/// use graphstate::GraphState;
///
/// let mut g = GraphState::with_vertices(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// let csr = g.snapshot_csr();
/// assert_eq!(csr.neighbors(1), &[0, 2]);
/// assert_eq!(csr.component_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrSnapshot {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<u32>,
}

impl CsrSnapshot {
    /// Assembles a snapshot from raw CSR arrays: `offsets[v]..offsets[v+1]`
    /// must index the sorted neighbor list of `v` inside `targets`, and
    /// every edge must appear in both directions. Intended for producers
    /// (like the hardware layer lattice) that can emit CSR form directly
    /// without routing through a mutable [`GraphState`].
    ///
    /// # Panics
    ///
    /// Panics when the offset table is malformed (empty, non-monotonic, or
    /// not covering `targets`).
    pub fn from_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offset table needs a leading 0");
        assert_eq!(offsets[0], 0, "offset table must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offset table must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            targets.len(),
            "offset table must cover the target array"
        );
        debug_assert!(
            (0..offsets.len() - 1).all(|v| {
                let s = &targets[offsets[v] as usize..offsets[v + 1] as usize];
                s.windows(2).all(|w| w[0] < w[1])
            }),
            "neighbor lists must be sorted and duplicate-free"
        );
        CsrSnapshot { offsets, targets }
    }

    /// Exclusive upper bound on vertex ids.
    pub fn vertex_bound(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbors of `v` (empty for removed or out-of-range ids).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v` in the snapshot.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Returns `true` when the edge `(a, b)` is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Labels every vertex with a component id (isolated and removed
    /// vertices each form their own singleton) and returns the labels plus
    /// the component count. Runs one allocation-free BFS flood over the CSR
    /// arrays.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.vertex_bound();
        let mut label = vec![u32::MAX; n];
        let mut queue: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            label[start] = next;
            queue.push(start as u32);
            while let Some(u) = queue.pop() {
                for &w in self.neighbors(u as usize) {
                    if label[w as usize] == u32::MAX {
                        label[w as usize] = next;
                        queue.push(w);
                    }
                }
            }
            next += 1;
        }
        (label, next as usize)
    }

    /// Number of connected components (singletons included).
    pub fn component_count(&self) -> usize {
        self.components().1
    }

    /// Size of the largest connected component.
    pub fn largest_component_size(&self) -> usize {
        let (labels, count) = self.components();
        let mut sizes = vec![0usize; count];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> GraphState {
        let mut g = GraphState::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = GraphState::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        g.remove_edge(0, 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        // idempotent removal
        g.remove_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = GraphState::with_vertices(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = GraphState::with_vertices(5);
        g.add_edge(3, 4);
        g.add_edge(3, 0);
        g.add_edge(3, 2);
        assert_eq!(g.neighbors(3), Some(&[0, 2, 4][..]));
        g.remove_edge(3, 2);
        assert_eq!(g.neighbors(3), Some(&[0, 4][..]));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = GraphState::with_vertices(2);
        assert_eq!(g.try_add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        assert_eq!(g.toggle_edge(0, 0), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn missing_vertex_rejected() {
        let mut g = GraphState::with_vertices(2);
        assert_eq!(g.try_add_edge(0, 5), Err(GraphError::MissingVertex(5)));
        assert_eq!(g.measure_z(9), Err(GraphError::MissingVertex(9)));
    }

    #[test]
    fn remove_vertex_updates_counts() {
        let mut g = path(4);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        g.remove_vertex(1);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains(1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn local_complement_on_star_builds_clique() {
        // Star centered at 0 with leaves 1..4.
        let mut g = GraphState::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        g.local_complement(0).unwrap();
        // Leaves now form a complete graph K4.
        for i in 1..5 {
            for j in (i + 1)..5 {
                assert!(g.has_edge(i, j), "missing edge ({i},{j})");
            }
        }
        // LC is an involution.
        g.local_complement(0).unwrap();
        for i in 1..5 {
            for j in (i + 1)..5 {
                assert!(!g.has_edge(i, j));
            }
        }
    }

    #[test]
    fn measure_z_removes_vertex() {
        let mut g = path(3);
        g.measure_z(1).unwrap();
        assert!(!g.contains(1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn measure_y_contracts_wire() {
        let mut g = path(3);
        g.measure_y(1).unwrap();
        assert!(g.has_edge(0, 2));
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn measure_x_on_wire_keeps_endpoint_connectivity() {
        // X measurement on an interior wire qubit keeps the two ends in the
        // same connected component (it acts like removing the qubit while
        // splicing the wire, possibly leaving the special neighbor attached).
        let mut g = path(4);
        g.measure_x(1, Some(0)).unwrap();
        assert!(!g.contains(1));
        assert!(g.connected(0, 3), "wire broken by X measurement");
    }

    #[test]
    fn measure_x_isolated_vertex() {
        let mut g = GraphState::with_vertices(1);
        g.measure_x(0, None).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn measure_x_invalid_special() {
        let mut g = path(3);
        assert_eq!(g.measure_x(0, Some(2)), Err(GraphError::MissingEdge(0, 2)));
    }

    #[test]
    fn component_and_largest_component() {
        let mut g = GraphState::with_vertices(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(4, 5);
        assert_eq!(g.component(0), vec![0, 1, 2]);
        assert_eq!(g.component(3), vec![3]);
        assert_eq!(g.largest_component(), vec![0, 1, 2]);
    }

    #[test]
    fn shortest_path_on_grid() {
        // 3x3 grid, path from corner to corner has 5 vertices.
        let mut g = GraphState::with_vertices(9);
        let idx = |r: usize, c: usize| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    g.add_edge(idx(r, c), idx(r, c + 1));
                }
                if r + 1 < 3 {
                    g.add_edge(idx(r, c), idx(r + 1, c));
                }
            }
        }
        let p = g.shortest_path(idx(0, 0), idx(2, 2)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], idx(0, 0));
        assert_eq!(*p.last().unwrap(), idx(2, 2));
        // Filtered search that forbids the center must go around it.
        let p2 = g
            .shortest_path_filtered(idx(0, 0), idx(2, 2), |v| v != idx(1, 1))
            .unwrap();
        assert_eq!(p2.len(), 5);
        assert!(!p2.contains(&idx(1, 1)));
    }

    #[test]
    fn shortest_path_absent() {
        let g = GraphState::with_vertices(4);
        assert!(g.shortest_path(0, 3).is_none());
    }

    #[test]
    fn edges_listing_sorted() {
        let mut g = GraphState::with_vertices(3);
        g.add_edge(2, 0);
        g.add_edge(1, 2);
        assert_eq!(g.edges(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn vertices_skips_removed() {
        let mut g = GraphState::with_vertices(3);
        g.remove_vertex(1);
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![0, 2]);
        assert_eq!(g.id_bound(), 3);
    }

    #[test]
    fn csr_snapshot_basics() {
        let mut g = GraphState::with_vertices(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let csr = g.snapshot_csr();
        assert_eq!(csr.vertex_bound(), 5);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert!(csr.has_edge(3, 4));
        assert!(!csr.has_edge(2, 3));
        assert_eq!(csr.component_count(), 2);
        assert_eq!(csr.largest_component_size(), 3);
    }

    #[test]
    fn csr_snapshot_skips_removed_vertices() {
        let mut g = path(4);
        g.remove_vertex(1);
        let csr = g.snapshot_csr();
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[3]);
        assert_eq!(csr.edge_count(), 1);
        // 0 alone, 1 removed-singleton, {2, 3}.
        assert_eq!(csr.component_count(), 3);
    }

    #[test]
    fn csr_snapshot_is_immutable_view() {
        let mut g = path(3);
        let csr = g.snapshot_csr();
        g.remove_vertex(1);
        // The snapshot still sees the original adjacency.
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(1), None);
    }
}
