//! Disjoint-set (union-find) data structure.
//!
//! The online pass performs a large number of connectivity checks while
//! searching renormalization paths and time-like connections; a union-find
//! structure with path compression and union by rank keeps those checks
//! effectively constant time, as prescribed in Section 5 of the paper.

/// Union-find over the elements `0..n`.
///
/// # Example
///
/// ```
/// use graphstate::DisjointSet;
///
/// let mut dsu = DisjointSet::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    n_sets: usize,
}

impl DisjointSet {
    /// Creates a structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            n_sets: n,
        }
    }

    /// Resets the structure to `n` singleton sets, reusing the existing
    /// allocations. This is the hot-path entry point: the online pass calls
    /// it once per band/strip instead of constructing a fresh
    /// [`DisjointSet`] (and paying two allocations) per connectivity check.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.n_sets = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.n_sets
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when the two
    /// were previously in different sets.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.n_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        // O(n); only used in tests / statistics, never in the hot path.
        (0..self.len()).filter(|&i| self.find(i) == root).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut dsu = DisjointSet::new(5);
        assert_eq!(dsu.set_count(), 5);
        for i in 0..5 {
            assert_eq!(dsu.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSet::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert_eq!(dsu.set_count(), 4);
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(0, 3));
        assert_eq!(dsu.set_size(0), 3);
    }

    #[test]
    fn chain_unions_connect_all() {
        let n = 200;
        let mut dsu = DisjointSet::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.same_set(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let dsu = DisjointSet::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.set_count(), 0);
    }
}
