//! Disjoint-set (union-find) data structure.
//!
//! The online pass performs a large number of connectivity checks while
//! searching renormalization paths and time-like connections; a union-find
//! structure with path compression and union by rank keeps those checks
//! effectively constant time, as prescribed in Section 5 of the paper.

/// Union-find over the elements `0..n`.
///
/// # Example
///
/// ```
/// use graphstate::DisjointSet;
///
/// let mut dsu = DisjointSet::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    n_sets: usize,
}

impl DisjointSet {
    /// Creates a structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            n_sets: n,
        }
    }

    /// Resets the structure to `n` singleton sets, reusing the existing
    /// allocations. This is the hot-path entry point: the online pass calls
    /// it once per band/strip instead of constructing a fresh
    /// [`DisjointSet`] (and paying two allocations) per connectivity check.
    ///
    /// The identity refill of `parent` runs in fixed-width chunks of
    /// straight-line stores (word-parallel: no iterator protocol in the
    /// loop body, so the compiler emits vector adds on a stepped index
    /// register instead of scalar `extend` iterations) — this is the fill
    /// the joining-interval connectivity check of the modular
    /// renormalizer pays once per strip scan. Since the bit-packed layer
    /// planes (PR 5) the strip scans run a site-bitmap precheck first, so
    /// this reset is only paid for strips that can actually connect.
    pub fn reset(&mut self, n: usize) {
        // `resize` zero-fills only the grown tail (a one-time cost as the
        // structure reaches its steady-state size); every slot is then
        // identity-written by the chunk loop below.
        self.parent.resize(n, 0);
        const LANES: usize = 8;
        let mut base = 0usize;
        let mut chunks = self.parent.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            // Fixed-size pattern: the bound check vanishes and the eight
            // stores vectorize.
            let lanes: &mut [usize; LANES] = chunk.try_into().expect("exact chunk");
            for (offset, slot) in lanes.iter_mut().enumerate() {
                *slot = base + offset;
            }
            base += LANES;
        }
        for (offset, slot) in chunks.into_remainder().iter_mut().enumerate() {
            *slot = base + offset;
        }
        // One memset covers truncation, growth and the stale-rank clear.
        self.rank.clear();
        self.rank.resize(n, 0);
        self.n_sets = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.n_sets
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    #[inline]
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when the two
    /// were previously in different sets.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    #[inline]
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.n_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Merges all elements of `start..start + len` into one set, with the
    /// same resulting connectivity as the `len - 1` pairwise unions
    /// `union(start, start + 1)`, …, `union(start + len - 2, start + len - 1)`.
    ///
    /// This is the span primitive of the word-parallel strip scans: a run of
    /// east-connected sites extracted from one bond word joins as a single
    /// span instead of one `union` call (two `find`s each) per bond. Fresh
    /// singletons — the overwhelmingly common case right after
    /// [`DisjointSet::reset`] — are attached to the span root with one
    /// parent store and no `find` at all; elements already linked (e.g. by a
    /// vertical union from the previous strip row) fall back to a full
    /// union-by-rank merge.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the element count.
    pub fn union_range(&mut self, start: usize, len: usize) {
        if len <= 1 {
            return;
        }
        assert!(
            start + len <= self.parent.len(),
            "range {start}..{} out of bounds (len {})",
            start + len,
            self.parent.len()
        );
        let mut root = self.find(start);
        if self.rank[root] == 0 {
            // The root is about to gain children; pre-promoting it keeps the
            // forest as balanced as union-by-rank would.
            self.rank[root] = 1;
        }
        for i in start + 1..start + len {
            if self.parent[i] == i && self.rank[i] == 0 {
                // Untouched singleton: direct attach.
                self.parent[i] = root;
                self.n_sets -= 1;
                continue;
            }
            let r = self.find(i);
            if r == root {
                continue;
            }
            self.n_sets -= 1;
            match self.rank[r].cmp(&self.rank[root]) {
                std::cmp::Ordering::Less => self.parent[r] = root,
                std::cmp::Ordering::Greater => {
                    self.parent[root] = r;
                    root = r;
                }
                std::cmp::Ordering::Equal => {
                    self.parent[r] = root;
                    self.rank[root] += 1;
                }
            }
        }
    }

    /// Returns `true` when `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    #[inline]
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        // O(n); only used in tests / statistics, never in the hot path.
        (0..self.len()).filter(|&i| self.find(i) == root).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut dsu = DisjointSet::new(5);
        assert_eq!(dsu.set_count(), 5);
        for i in 0..5 {
            assert_eq!(dsu.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSet::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert_eq!(dsu.set_count(), 4);
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(0, 3));
        assert_eq!(dsu.set_size(0), 3);
    }

    #[test]
    fn chain_unions_connect_all() {
        let n = 200;
        let mut dsu = DisjointSet::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.same_set(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let dsu = DisjointSet::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.set_count(), 0);
    }

    /// A reset structure must be observationally identical to a freshly
    /// constructed one: same length, every element its own singleton root.
    fn assert_equivalent_to_fresh(dsu: &mut DisjointSet, n: usize) {
        assert_eq!(dsu.len(), n);
        assert_eq!(dsu.set_count(), n);
        for i in 0..n {
            assert_eq!(dsu.find(i), i, "element {i} not a singleton root after reset to {n}");
        }
    }

    #[test]
    fn chunked_reset_is_equivalent_to_fresh_construction() {
        // Sizes straddling the chunk width: empty, sub-chunk, exact
        // multiples, every remainder length, and a large non-multiple.
        let sizes = [0usize, 1, 3, 7, 8, 9, 10, 15, 16, 17, 64, 100, 1003];
        let mut dsu = DisjointSet::new(0);
        for &n in &sizes {
            // Dirty the structure first so the reset has real work to undo.
            if dsu.len() >= 2 {
                let len = dsu.len();
                for i in 0..len - 1 {
                    dsu.union(i, (i * 7 + 1) % len);
                }
            }
            dsu.reset(n);
            assert_equivalent_to_fresh(&mut dsu, n);
        }
    }

    #[test]
    fn reset_handles_growth_and_shrinkage() {
        let mut dsu = DisjointSet::new(5);
        dsu.union(0, 4);
        dsu.reset(100); // grow
        assert_equivalent_to_fresh(&mut dsu, 100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        dsu.reset(5); // shrink: ranks and parents from the large epoch must not leak
        assert_equivalent_to_fresh(&mut dsu, 5);
        // Unions after the shrink behave like on a fresh structure.
        assert!(dsu.union(0, 1));
        assert!(dsu.same_set(0, 1));
        assert_eq!(dsu.set_count(), 4);
    }

    /// Connectivity fingerprint: the root-class partition as one canonical
    /// label per element.
    fn partition(dsu: &mut DisjointSet) -> Vec<usize> {
        let n = dsu.len();
        let mut first_seen = vec![usize::MAX; n];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let r = dsu.find(i);
            if first_seen[r] == usize::MAX {
                first_seen[r] = i;
            }
            labels.push(first_seen[r]);
        }
        labels
    }

    #[test]
    fn union_range_matches_pairwise_unions() {
        // Property: for any prior union pattern and any span, union_range
        // leaves the same partition (and set count) as chained pairwise
        // unions. Exercised over a deterministic pseudo-random mix of
        // pre-existing links, spans of every length and overlapping spans.
        let n = 96usize;
        let mut rng_state = 0x9E37u64;
        let mut rng = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        for round in 0..50 {
            let mut spans = DisjointSet::new(n);
            let mut pairs = DisjointSet::new(n);
            // Pre-existing structure, as vertical unions would leave it.
            for _ in 0..round % 7 {
                let a = rng() % n;
                let b = rng() % n;
                spans.union(a, b);
                pairs.union(a, b);
            }
            // A handful of spans, including length 0, 1 and overlapping.
            for _ in 0..1 + round % 5 {
                let start = rng() % n;
                let len = rng() % (n - start + 1);
                spans.union_range(start, len);
                for i in start + 1..start + len {
                    pairs.union(i - 1, i);
                }
            }
            assert_eq!(spans.set_count(), pairs.set_count(), "round {round}");
            assert_eq!(partition(&mut spans), partition(&mut pairs), "round {round}");
        }
    }

    #[test]
    fn union_range_degenerate_spans_are_noops() {
        let mut dsu = DisjointSet::new(8);
        dsu.union_range(3, 0);
        dsu.union_range(5, 1);
        dsu.union_range(8, 0);
        assert_eq!(dsu.set_count(), 8);
        for i in 0..8 {
            assert_eq!(dsu.find(i), i);
        }
    }

    #[test]
    fn union_range_whole_domain_single_set() {
        let mut dsu = DisjointSet::new(300);
        dsu.union_range(0, 300);
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.same_set(0, 299));
        // Further unions inside the span change nothing.
        assert!(!dsu.union(7, 250));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn union_range_past_end_panics() {
        let mut dsu = DisjointSet::new(4);
        dsu.union_range(2, 3);
    }

    #[test]
    fn reset_clears_stale_ranks() {
        // Build a rank-heavy structure, reset, and verify union-by-rank
        // behaves freshly: rank ties attach the second root under the
        // first, which is only observable if ranks really restarted at 0.
        let mut dsu = DisjointSet::new(64);
        for i in 1..64 {
            dsu.union(0, i);
        }
        dsu.reset(64);
        assert!(dsu.union(2, 3));
        assert_eq!(dsu.find(3), 2, "equal-rank union parents the first argument");
    }
}
