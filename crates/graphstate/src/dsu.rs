//! Disjoint-set (union-find) data structure.
//!
//! The online pass performs a large number of connectivity checks while
//! searching renormalization paths and time-like connections; a union-find
//! structure with path compression and union by rank keeps those checks
//! effectively constant time, as prescribed in Section 5 of the paper.

/// Union-find over the elements `0..n`.
///
/// # Example
///
/// ```
/// use graphstate::DisjointSet;
///
/// let mut dsu = DisjointSet::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    n_sets: usize,
}

impl DisjointSet {
    /// Creates a structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            n_sets: n,
        }
    }

    /// Resets the structure to `n` singleton sets, reusing the existing
    /// allocations. This is the hot-path entry point: the online pass calls
    /// it once per band/strip instead of constructing a fresh
    /// [`DisjointSet`] (and paying two allocations) per connectivity check.
    ///
    /// The identity refill of `parent` runs in fixed-width chunks of
    /// straight-line stores (word-parallel: no iterator protocol in the
    /// loop body, so the compiler emits vector adds on a stepped index
    /// register instead of scalar `extend` iterations) — this is the fill
    /// the joining-interval connectivity check of the modular
    /// renormalizer pays once per strip scan. Since the bit-packed layer
    /// planes (PR 5) the strip scans run a site-bitmap precheck first, so
    /// this reset is only paid for strips that can actually connect.
    pub fn reset(&mut self, n: usize) {
        // `resize` zero-fills only the grown tail (a one-time cost as the
        // structure reaches its steady-state size); every slot is then
        // identity-written by the chunk loop below.
        self.parent.resize(n, 0);
        const LANES: usize = 8;
        let mut base = 0usize;
        let mut chunks = self.parent.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            // Fixed-size pattern: the bound check vanishes and the eight
            // stores vectorize.
            let lanes: &mut [usize; LANES] = chunk.try_into().expect("exact chunk");
            for (offset, slot) in lanes.iter_mut().enumerate() {
                *slot = base + offset;
            }
            base += LANES;
        }
        for (offset, slot) in chunks.into_remainder().iter_mut().enumerate() {
            *slot = base + offset;
        }
        // One memset covers truncation, growth and the stale-rank clear.
        self.rank.clear();
        self.rank.resize(n, 0);
        self.n_sets = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.n_sets
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    #[inline]
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when the two
    /// were previously in different sets.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    #[inline]
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.n_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    #[inline]
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        // O(n); only used in tests / statistics, never in the hot path.
        (0..self.len()).filter(|&i| self.find(i) == root).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut dsu = DisjointSet::new(5);
        assert_eq!(dsu.set_count(), 5);
        for i in 0..5 {
            assert_eq!(dsu.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSet::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert_eq!(dsu.set_count(), 4);
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(0, 3));
        assert_eq!(dsu.set_size(0), 3);
    }

    #[test]
    fn chain_unions_connect_all() {
        let n = 200;
        let mut dsu = DisjointSet::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.same_set(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let dsu = DisjointSet::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.set_count(), 0);
    }

    /// A reset structure must be observationally identical to a freshly
    /// constructed one: same length, every element its own singleton root.
    fn assert_equivalent_to_fresh(dsu: &mut DisjointSet, n: usize) {
        assert_eq!(dsu.len(), n);
        assert_eq!(dsu.set_count(), n);
        for i in 0..n {
            assert_eq!(dsu.find(i), i, "element {i} not a singleton root after reset to {n}");
        }
    }

    #[test]
    fn chunked_reset_is_equivalent_to_fresh_construction() {
        // Sizes straddling the chunk width: empty, sub-chunk, exact
        // multiples, every remainder length, and a large non-multiple.
        let sizes = [0usize, 1, 3, 7, 8, 9, 10, 15, 16, 17, 64, 100, 1003];
        let mut dsu = DisjointSet::new(0);
        for &n in &sizes {
            // Dirty the structure first so the reset has real work to undo.
            if dsu.len() >= 2 {
                let len = dsu.len();
                for i in 0..len - 1 {
                    dsu.union(i, (i * 7 + 1) % len);
                }
            }
            dsu.reset(n);
            assert_equivalent_to_fresh(&mut dsu, n);
        }
    }

    #[test]
    fn reset_handles_growth_and_shrinkage() {
        let mut dsu = DisjointSet::new(5);
        dsu.union(0, 4);
        dsu.reset(100); // grow
        assert_equivalent_to_fresh(&mut dsu, 100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        dsu.reset(5); // shrink: ranks and parents from the large epoch must not leak
        assert_equivalent_to_fresh(&mut dsu, 5);
        // Unions after the shrink behave like on a fresh structure.
        assert!(dsu.union(0, 1));
        assert!(dsu.same_set(0, 1));
        assert_eq!(dsu.set_count(), 4);
    }

    #[test]
    fn reset_clears_stale_ranks() {
        // Build a rank-heavy structure, reset, and verify union-by-rank
        // behaves freshly: rank ties attach the second root under the
        // first, which is only observable if ranks really restarted at 0.
        let mut dsu = DisjointSet::new(64);
        for i in 1..64 {
            dsu.union(0, i);
        }
        dsu.reset(64);
        assert!(dsu.union(2, 3));
        assert_eq!(dsu.find(3), 2, "equal-rank union parents the first argument");
    }
}
