//! Type-II fusion rewrite rules on graph states.
//!
//! A (type-II) fusion is the simultaneous measurement of `X⊗Z` and `Z⊗X` on
//! two photonic qubits belonging to different entangled states. Both photons
//! are destroyed regardless of the outcome; what differs is the effect on the
//! remaining qubits:
//!
//! * **success** — the neighborhoods of the two measured qubits become
//!   pairwise connected (every edge between a former neighbor of one and a
//!   former neighbor of the other is toggled), merging the two entangled
//!   states into a larger one;
//! * **failure** — each measured qubit is removed after a local
//!   complementation on it, which for a leaf qubit is a plain removal and for
//!   a root qubit leaves a fully-connected (cyclic) structure on its former
//!   neighbors, exactly as illustrated in Fig. 8 of the paper.
//!
//! Failures are *heralded*: the classical control knows which case occurred
//! and can adjust subsequent operations (collective feed-forward).

use crate::clifford::LocalClifford;
use crate::error::GraphError;
use crate::graph::{GraphState, VertexId};

/// Classification of a fusion by the roles of the two photons in their
/// resource states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionKind {
    /// Fusion between two leaf (degree-1) qubits. Used to join resource
    /// states into lattice structures.
    LeafLeaf,
    /// Fusion between a root (degree > 1) qubit and a leaf qubit. Used to
    /// merge several resource states into a higher-degree one.
    RootLeaf,
}

impl std::fmt::Display for FusionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionKind::LeafLeaf => f.write_str("leaf-leaf"),
            FusionKind::RootLeaf => f.write_str("root-leaf"),
        }
    }
}

/// The heralded outcome of a fusion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionOutcome {
    /// The fusion succeeded; the two neighborhoods were joined.
    Success,
    /// The fusion failed; both photons were lost without joining anything.
    Failure,
}

impl FusionOutcome {
    /// Returns `true` for [`FusionOutcome::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, FusionOutcome::Success)
    }
}

impl GraphState {
    /// Applies a *successful* type-II fusion of qubits `a` and `b`: every
    /// pair `(u, v)` with `u ∈ N(a) \ {b}` and `v ∈ N(b) \ {a}` has its edge
    /// toggled, then both `a` and `b` are removed.
    ///
    /// Returns the local-Clifford byproducts that the classical frame should
    /// record for the surviving neighbors (identity in this simplified
    /// tracking — outcome-dependent Pauli byproducts are absorbed into the
    /// feed-forward of measurement angles and do not change the graph).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] if either qubit does not exist,
    /// or [`GraphError::SelfLoop`] if `a == b`.
    pub fn fuse_success(&mut self, a: VertexId, b: VertexId) -> Result<LocalClifford, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.contains(a) {
            return Err(GraphError::MissingVertex(a));
        }
        if !self.contains(b) {
            return Err(GraphError::MissingVertex(b));
        }
        let na: Vec<VertexId> = self
            .neighbors(a)
            .expect("a exists")
            .iter()
            .copied()
            .filter(|&v| v != b)
            .collect();
        let nb: Vec<VertexId> = self
            .neighbors(b)
            .expect("b exists")
            .iter()
            .copied()
            .filter(|&v| v != a)
            .collect();
        for &u in &na {
            for &v in &nb {
                if u != v {
                    self.toggle_edge(u, v).expect("neighbors are alive");
                }
            }
        }
        self.remove_vertex(a);
        self.remove_vertex(b);
        Ok(LocalClifford::identity())
    }

    /// Applies a *failed* fusion of qubits `a` and `b`: each qubit is removed
    /// after a local complementation on it (Section 4.2). The order of the
    /// two removals does not matter when `a` and `b` belong to different
    /// connected components, which is the case for fusions between distinct
    /// resource states.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] if either qubit does not exist,
    /// or [`GraphError::SelfLoop`] if `a == b`.
    pub fn fuse_failure(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.contains(a) {
            return Err(GraphError::MissingVertex(a));
        }
        if !self.contains(b) {
            return Err(GraphError::MissingVertex(b));
        }
        self.local_complement(a).expect("a exists");
        self.remove_vertex(a);
        self.local_complement(b).expect("b exists");
        self.remove_vertex(b);
        Ok(())
    }

    /// Applies a fusion with the given heralded `outcome`, dispatching to
    /// [`GraphState::fuse_success`] or [`GraphState::fuse_failure`].
    ///
    /// # Errors
    ///
    /// Propagates the errors of the underlying rewrite.
    pub fn fuse(
        &mut self,
        a: VertexId,
        b: VertexId,
        outcome: FusionOutcome,
    ) -> Result<(), GraphError> {
        match outcome {
            FusionOutcome::Success => self.fuse_success(a, b).map(|_| ()),
            FusionOutcome::Failure => self.fuse_failure(a, b),
        }
    }

    /// Recovers a star-like structure after a failed root-leaf fusion.
    ///
    /// A failed fusion on a root qubit leaves its former neighbors fully
    /// connected (Fig. 8 of the paper). Applying a local complementation on
    /// any one of them, say `center`, restores a star centered at `center`;
    /// the physical implementation would be the single-qubit operator
    /// sequence `U_v(G)` whose bookkeeping is handled by
    /// [`crate::LocalClifford`] corrections, returned here for every affected
    /// neighbor so the caller can postpone them.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] when `center` does not exist.
    pub fn recover_star(
        &mut self,
        center: VertexId,
    ) -> Result<Vec<(VertexId, LocalClifford)>, GraphError> {
        if !self.contains(center) {
            return Err(GraphError::MissingVertex(center));
        }
        let neighbors: Vec<VertexId> = self.neighbors(center).expect("center exists").to_vec();
        self.local_complement(center)?;
        // U_v(G) = exp(-iπ/4 X_v) Π_{u∈N(v)} exp(iπ/4 Z_u)
        let mut corrections = Vec::with_capacity(neighbors.len() + 1);
        corrections.push((center, LocalClifford::sqrt_x(false)));
        for u in neighbors {
            corrections.push((u, LocalClifford::sqrt_z(true)));
        }
        Ok(corrections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::StarState;

    /// Builds two stars of the given sizes in one host graph.
    fn two_stars(size_a: usize, size_b: usize) -> (GraphState, StarState, StarState) {
        let mut g = GraphState::new();
        let a = StarState::instantiate(&mut g, size_a);
        let b = StarState::instantiate(&mut g, size_b);
        (g, a, b)
    }

    #[test]
    fn leaf_leaf_success_joins_roots() {
        let (mut g, a, b) = two_stars(4, 4);
        let la = a.leaves()[0];
        let lb = b.leaves()[0];
        g.fuse_success(la, lb).unwrap();
        // The two roots are now directly connected; the fused leaves are gone.
        assert!(g.has_edge(a.root(), b.root()));
        assert!(!g.contains(la));
        assert!(!g.contains(lb));
        assert_eq!(g.vertex_count(), 6);
    }

    #[test]
    fn leaf_leaf_failure_only_loses_leaves() {
        let (mut g, a, b) = two_stars(4, 4);
        let la = a.leaves()[0];
        let lb = b.leaves()[0];
        g.fuse_failure(la, lb).unwrap();
        assert!(!g.contains(la));
        assert!(!g.contains(lb));
        assert!(!g.has_edge(a.root(), b.root()));
        // Remaining stars are intact minus one leaf each.
        assert_eq!(g.degree(a.root()), Some(2));
        assert_eq!(g.degree(b.root()), Some(2));
    }

    #[test]
    fn root_leaf_success_builds_higher_degree_star() {
        // Section 4.1: a successful root-leaf fusion between two 4-qubit
        // stars (degree 3 each) yields a 7-qubit star-like state with a
        // degree-4... actually degree (3-1)+(3)=5? The paper states a
        // 7-degree graph state from two 4-degree resource states; with
        // 4-qubit stars (3 leaves) the fused state has degree
        // (leaves_of_A - 1) + leaves_of_B attached to the surviving root
        // when fusing root(B) with a leaf of A.
        let (mut g, a, b) = two_stars(4, 4);
        let leaf_a = a.leaves()[0];
        let root_b = b.root();
        g.fuse_success(leaf_a, root_b).unwrap();
        // Surviving root of A now connects to all former leaves of B in
        // addition to its remaining own leaves.
        let deg = g.degree(a.root()).unwrap();
        assert_eq!(deg, 2 + 3, "root degree after root-leaf merge");
        for &lb in b.leaves() {
            assert!(g.has_edge(a.root(), lb));
        }
    }

    #[test]
    fn root_leaf_failure_creates_clique_then_recovers() {
        // Fig. 8: a failed root-leaf fusion turns the root's resource state
        // into a fully connected cyclic structure; recover_star fixes it.
        let (mut g, a, b) = two_stars(5, 5);
        let leaf_a = a.leaves()[0];
        let root_b = b.root();
        g.fuse_failure(leaf_a, root_b).unwrap();
        // B's leaves are now pairwise connected (clique of size 4).
        let bl = b.leaves();
        for i in 0..bl.len() {
            for j in (i + 1)..bl.len() {
                assert!(g.has_edge(bl[i], bl[j]), "expected clique edge");
            }
        }
        // Recover a star centered at one of the former leaves.
        let center = bl[0];
        let corrections = g.recover_star(center).unwrap();
        assert_eq!(corrections.len(), bl.len());
        for i in 1..bl.len() {
            for j in (i + 1)..bl.len() {
                assert!(
                    !g.has_edge(bl[i], bl[j]),
                    "clique edge should be removed by recovery"
                );
            }
            assert!(g.has_edge(center, bl[i]));
        }
    }

    #[test]
    fn fuse_dispatches_on_outcome() {
        let (mut g, a, b) = two_stars(3, 3);
        g.fuse(a.leaves()[0], b.leaves()[0], FusionOutcome::Success)
            .unwrap();
        assert!(g.has_edge(a.root(), b.root()));
        let (mut g2, a2, b2) = two_stars(3, 3);
        g2.fuse(a2.leaves()[0], b2.leaves()[0], FusionOutcome::Failure)
            .unwrap();
        assert!(!g2.has_edge(a2.root(), b2.root()));
    }

    #[test]
    fn fusion_on_missing_vertices_errors() {
        let mut g = GraphState::with_vertices(2);
        assert!(g.fuse_success(0, 5).is_err());
        assert!(g.fuse_failure(7, 1).is_err());
        assert!(g.fuse(0, 0, FusionOutcome::Success).is_err());
    }

    #[test]
    fn fusion_outcome_helpers() {
        assert!(FusionOutcome::Success.is_success());
        assert!(!FusionOutcome::Failure.is_success());
        assert_eq!(FusionKind::LeafLeaf.to_string(), "leaf-leaf");
        assert_eq!(FusionKind::RootLeaf.to_string(), "root-leaf");
    }

    #[test]
    fn chained_fusions_build_linear_cluster() {
        // Fusing leaves of consecutive stars builds a chain of roots, the
        // 1D analogue of the lattice construction in Fig. 7(a).
        let mut g = GraphState::new();
        let stars: Vec<StarState> = (0..5).map(|_| StarState::instantiate(&mut g, 4)).collect();
        for w in stars.windows(2) {
            let left_leaf = w[0].leaves()[0];
            let right_leaf = w[1].leaves()[1];
            g.fuse_success(left_leaf, right_leaf).unwrap();
        }
        for w in stars.windows(2) {
            assert!(g.has_edge(w[0].root(), w[1].root()));
        }
        // The chain of roots is connected end to end.
        assert!(g.connected(stars[0].root(), stars[4].root()));
    }
}
