//! Property-based tests for the graph-state substrate.

use graphstate::{DisjointSet, FusionOutcome, GraphState, LocalClifford, MeasBasis};
use proptest::prelude::*;

/// Strategy: a random graph on `n` vertices given by an edge-presence bitmap.
fn random_graph(max_n: usize) -> impl Strategy<Value = GraphState> {
    (2usize..max_n).prop_flat_map(|n| {
        let n_pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::ANY, n_pairs).prop_map(move |bits| {
            let mut g = GraphState::with_vertices(n);
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[k] {
                        g.add_edge(i, j);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Local complementation is an involution: τ_v ∘ τ_v = id.
    #[test]
    fn local_complement_is_involution(mut g in random_graph(12), sel in 0usize..12) {
        let verts: Vec<_> = g.vertices().collect();
        let v = verts[sel % verts.len()];
        let before = g.clone();
        g.local_complement(v).unwrap();
        g.local_complement(v).unwrap();
        prop_assert_eq!(g, before);
    }

    /// Local complementation never changes the vertex set or the degree of
    /// the complemented vertex.
    #[test]
    fn local_complement_preserves_vertices(mut g in random_graph(12), sel in 0usize..12) {
        let verts: Vec<_> = g.vertices().collect();
        let v = verts[sel % verts.len()];
        let deg_before = g.degree(v).unwrap();
        let count_before = g.vertex_count();
        g.local_complement(v).unwrap();
        prop_assert_eq!(g.degree(v).unwrap(), deg_before);
        prop_assert_eq!(g.vertex_count(), count_before);
    }

    /// Any fusion (success or failure) destroys exactly the two photons it
    /// acts on.
    #[test]
    fn fusion_destroys_exactly_two_qubits(
        mut g in random_graph(12),
        sa in 0usize..12,
        sb in 0usize..12,
        success in proptest::bool::ANY,
    ) {
        let verts: Vec<_> = g.vertices().collect();
        let a = verts[sa % verts.len()];
        let b = verts[sb % verts.len()];
        prop_assume!(a != b);
        let before = g.vertex_count();
        let outcome = if success { FusionOutcome::Success } else { FusionOutcome::Failure };
        g.fuse(a, b, outcome).unwrap();
        prop_assert_eq!(g.vertex_count(), before - 2);
        prop_assert!(!g.contains(a));
        prop_assert!(!g.contains(b));
    }

    /// Z-measurement removes exactly one vertex and all of its incident
    /// edges.
    #[test]
    fn measure_z_removes_one_vertex(mut g in random_graph(12), sel in 0usize..12) {
        let verts: Vec<_> = g.vertices().collect();
        let v = verts[sel % verts.len()];
        let deg = g.degree(v).unwrap();
        let edges_before = g.edge_count();
        let count_before = g.vertex_count();
        g.measure_z(v).unwrap();
        prop_assert_eq!(g.vertex_count(), count_before - 1);
        prop_assert_eq!(g.edge_count(), edges_before - deg);
    }

    /// The union-find structure agrees with BFS-based connectivity on the
    /// same random graph.
    #[test]
    fn dsu_matches_bfs_connectivity(g in random_graph(10), qa in 0usize..10, qb in 0usize..10) {
        let n = g.id_bound();
        let mut dsu = DisjointSet::new(n);
        for (a, b) in g.edges() {
            dsu.union(a, b);
        }
        let verts: Vec<_> = g.vertices().collect();
        let a = verts[qa % verts.len()];
        let b = verts[qb % verts.len()];
        prop_assert_eq!(dsu.same_set(a, b), g.connected(a, b));
    }

    /// Composing a random word of ±π/2 rotations with its inverse always
    /// yields the identity, and basis conjugation by the identity is a
    /// no-op.
    #[test]
    fn clifford_word_inverse(word in proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 0..8), alpha in 0.0f64..6.28) {
        let mut u = LocalClifford::identity();
        for (is_x, positive) in word {
            let gen = if is_x { LocalClifford::sqrt_x(positive) } else { LocalClifford::sqrt_z(positive) };
            u = gen.compose(&u);
        }
        let round = u.inverse().compose(&u);
        prop_assert!(round.is_identity());
        let m = MeasBasis::equatorial(alpha);
        prop_assert!(m.conjugated_by(&LocalClifford::identity()).approx_eq(&m));
    }

    /// Conjugating a basis by u and then by u⁻¹ restores the original basis.
    #[test]
    fn basis_conjugation_roundtrip(word in proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 0..6), alpha in 0.0f64..6.28) {
        let mut u = LocalClifford::identity();
        for (is_x, positive) in word {
            let gen = if is_x { LocalClifford::sqrt_x(positive) } else { LocalClifford::sqrt_z(positive) };
            u = gen.compose(&u);
        }
        let m = MeasBasis::equatorial(alpha);
        let roundtrip = m.conjugated_by(&u).conjugated_by(&u.inverse());
        prop_assert!(roundtrip.approx_eq(&m), "got {} expected {}", roundtrip, m);
    }
}
