//! Property-based tests for the graph-state substrate.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties run over a deterministic family of seeded random
//! inputs: every case derives from an explicit RNG seed, which keeps
//! failures reproducible (the failing seed is part of the panic message).

use graphstate::{DisjointSet, FusionOutcome, GraphState, LocalClifford, MeasBasis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// A random graph on `2..=max_n` vertices from an edge-presence bitmap.
fn random_graph(rng: &mut StdRng, max_n: usize) -> GraphState {
    let n = 2 + rng.gen_range(0..max_n - 1);
    let mut g = GraphState::with_vertices(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.5) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn pick_vertex(rng: &mut StdRng, g: &GraphState) -> usize {
    let verts: Vec<_> = g.vertices().collect();
    verts[rng.gen_range(0..verts.len())]
}

/// Local complementation is an involution: τ_v ∘ τ_v = id.
#[test]
fn local_complement_is_involution() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, 12);
        let v = pick_vertex(&mut rng, &g);
        let before = g.clone();
        g.local_complement(v).unwrap();
        g.local_complement(v).unwrap();
        assert_eq!(g, before, "seed {seed}: τ_{v} twice changed the graph");
    }
}

/// Local complementation never changes the vertex set or the degree of the
/// complemented vertex.
#[test]
fn local_complement_preserves_vertices() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, 12);
        let v = pick_vertex(&mut rng, &g);
        let deg_before = g.degree(v).unwrap();
        let count_before = g.vertex_count();
        g.local_complement(v).unwrap();
        assert_eq!(g.degree(v).unwrap(), deg_before, "seed {seed}");
        assert_eq!(g.vertex_count(), count_before, "seed {seed}");
    }
}

/// Any fusion (success or failure) destroys exactly the two photons it acts
/// on.
#[test]
fn fusion_destroys_exactly_two_qubits() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, 12);
        let a = pick_vertex(&mut rng, &g);
        let b = pick_vertex(&mut rng, &g);
        if a == b {
            continue;
        }
        let before = g.vertex_count();
        let outcome = if rng.gen_bool(0.5) {
            FusionOutcome::Success
        } else {
            FusionOutcome::Failure
        };
        g.fuse(a, b, outcome).unwrap();
        assert_eq!(g.vertex_count(), before - 2, "seed {seed}");
        assert!(!g.contains(a), "seed {seed}");
        assert!(!g.contains(b), "seed {seed}");
    }
}

/// Z-measurement removes exactly one vertex and all of its incident edges.
#[test]
fn measure_z_removes_one_vertex() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, 12);
        let v = pick_vertex(&mut rng, &g);
        let deg = g.degree(v).unwrap();
        let edges_before = g.edge_count();
        let count_before = g.vertex_count();
        g.measure_z(v).unwrap();
        assert_eq!(g.vertex_count(), count_before - 1, "seed {seed}");
        assert_eq!(g.edge_count(), edges_before - deg, "seed {seed}");
    }
}

/// The union-find structure agrees with BFS-based connectivity on the same
/// random graph.
#[test]
fn dsu_matches_bfs_connectivity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 10);
        let n = g.id_bound();
        let mut dsu = DisjointSet::new(n);
        for (a, b) in g.edges() {
            dsu.union(a, b);
        }
        let a = pick_vertex(&mut rng, &g);
        let b = pick_vertex(&mut rng, &g);
        assert_eq!(
            dsu.same_set(a, b),
            g.connected(a, b),
            "seed {seed}: DSU and BFS disagree on ({a}, {b})"
        );
    }
}

/// The CSR snapshot reports exactly the adjacency of the live graph.
#[test]
fn csr_snapshot_matches_adjacency() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(&mut rng, 12);
        // Remove a couple of vertices so the snapshot must skip holes.
        for _ in 0..2 {
            if g.vertex_count() > 2 {
                let v = pick_vertex(&mut rng, &g);
                g.remove_vertex(v);
            }
        }
        let csr = g.snapshot_csr();
        assert_eq!(csr.vertex_bound(), g.id_bound(), "seed {seed}");
        assert_eq!(csr.edge_count(), g.edge_count(), "seed {seed}");
        for v in 0..g.id_bound() {
            let expected: Vec<u32> = g
                .neighbors(v)
                .map(|s| s.iter().map(|&u| u as u32).collect())
                .unwrap_or_default();
            assert_eq!(csr.neighbors(v), expected.as_slice(), "seed {seed}, vertex {v}");
        }
    }
}

fn random_clifford_word(rng: &mut StdRng, max_len: usize) -> LocalClifford {
    let len = rng.gen_range(0..max_len + 1);
    let mut u = LocalClifford::identity();
    for _ in 0..len {
        let is_x = rng.gen_bool(0.5);
        let positive = rng.gen_bool(0.5);
        let gen = if is_x {
            LocalClifford::sqrt_x(positive)
        } else {
            LocalClifford::sqrt_z(positive)
        };
        u = gen.compose(&u);
    }
    u
}

/// Composing a random word of ±π/2 rotations with its inverse always yields
/// the identity, and basis conjugation by the identity is a no-op.
#[test]
fn clifford_word_inverse() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_clifford_word(&mut rng, 8);
        let round = u.inverse().compose(&u);
        assert!(round.is_identity(), "seed {seed}");
        let alpha: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let m = MeasBasis::equatorial(alpha);
        assert!(m.conjugated_by(&LocalClifford::identity()).approx_eq(&m), "seed {seed}");
    }
}

/// Conjugating a basis by u and then by u⁻¹ restores the original basis.
#[test]
fn basis_conjugation_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_clifford_word(&mut rng, 6);
        let alpha: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let m = MeasBasis::equatorial(alpha);
        let roundtrip = m.conjugated_by(&u).conjugated_by(&u.inverse());
        assert!(roundtrip.approx_eq(&m), "seed {seed}: got {roundtrip} expected {m}");
    }
}
