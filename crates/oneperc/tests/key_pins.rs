//! Golden pins for the content-addressed cache keys (ISSUE 9 satellite).
//!
//! Three layers of caching hang off these hashes: the service tier's
//! [`ProgramCache`](oneperc::service::ProgramCache) (keyed by
//! `program_key = H(fingerprint, structural_hash)`), the tuner's frontier
//! artifacts (keyed by `Circuit::structural_hash`, validated by a tune
//! key that folds in `CompilerConfig::fingerprint` per lattice point),
//! and any artifact files already on disk from *previous* builds. The
//! hashes are documented as process-independent and stable across
//! versions — so a refactor that shifts them silently invalidates every
//! stored artifact and splits fleet-shared caches. These pins make such a
//! shift a loud, deliberate decision: if one fails, either restore the
//! encoding or bump the relevant version tag *and* re-pin, accepting the
//! cache invalidation.
//!
//! (The FNV-1a primitive underneath has its own golden pin in
//! `oneperc-circuit`'s hash tests; these pins cover the composite
//! encodings layered on top.)

use oneperc::service::program_key;
use oneperc::CompilerConfig;
use oneperc_circuit::benchmarks;

#[test]
fn compiler_config_fingerprints_are_pinned() {
    let cases: [(&str, CompilerConfig, u64); 4] = [
        ("qaoa4-p090 preset", CompilerConfig::for_qubits(4, 0.9, 1), 0xba48_5c2b_4a0c_4141),
        ("qaoa25-p075 preset", CompilerConfig::for_qubits(25, 0.75, 1), 0xbd63_8a28_9ba8_30df),
        (
            "sensitivity 36/3 p=0.80",
            CompilerConfig::for_sensitivity(36, 3, 0.8, 1),
            0x6600_5880_8014_cd5a,
        ),
        (
            "every builder knob flipped",
            CompilerConfig::for_qubits(4, 0.75, 1)
                .with_refresh_period(Some(6))
                .with_pipelining(true)
                .with_renorm_workers(2),
            0xd6a3_e42c_6115_7f06,
        ),
    ];
    for (name, config, expected) in cases {
        assert_eq!(
            config.fingerprint(),
            expected,
            "fingerprint of {name} shifted — stored artifacts and shared caches \
             would be invalidated; bump the fingerprint version tag and re-pin \
             if the change is deliberate"
        );
    }
    // The seed stays excluded whatever the encoding does.
    let base = CompilerConfig::for_qubits(4, 0.9, 1);
    assert_eq!(base.with_seed(999).fingerprint(), 0xba48_5c2b_4a0c_4141);
}

#[test]
fn circuit_structural_hashes_are_pinned() {
    let cases: [(&str, u64); 5] = [
        ("qaoa(4, 1)", 0x3b6c_15ac_b11b_89d3),
        ("qaoa(4, 2)", 0xb188_d247_3a91_5cb6),
        ("qft(4)", 0x44a7_8a30_ac98_ad50),
        ("rca(4)", 0x8573_c1ef_e806_e6bd),
        ("vqe(4, 1)", 0x9f36_6064_85d6_b8ea),
    ];
    let circuits = [
        benchmarks::qaoa(4, 1),
        benchmarks::qaoa(4, 2),
        benchmarks::qft(4),
        benchmarks::rca(4),
        benchmarks::vqe(4, 1),
    ];
    for ((name, expected), circuit) in cases.iter().zip(&circuits) {
        assert_eq!(
            circuit.structural_hash(),
            *expected,
            "structural hash of {name} shifted — artifact files keyed by the old \
             hash would be orphaned; bump the hash version tag and re-pin if the \
             change is deliberate"
        );
    }
    // Distinct seeds of the same generator stay distinct circuits.
    assert_ne!(circuits[0].structural_hash(), circuits[1].structural_hash());
}

#[test]
fn program_cache_key_is_pinned() {
    let config = CompilerConfig::for_qubits(4, 0.9, 1);
    let circuit = benchmarks::qaoa(4, 1);
    assert_eq!(
        program_key(&config, &circuit),
        0x2718_945d_9e91_b112,
        "the ProgramCache key composition shifted"
    );
    // Seed-independence carries through the composite key.
    assert_eq!(
        program_key(&config.with_seed(77), &circuit),
        0x2718_945d_9e91_b112
    );
}
