//! The OnePerc service layer: async admission and content-addressed
//! compilation over warm [`Session`](crate::Session)s.
//!
//! The paper splits compilation into a deterministic **offline pass**
//! (circuit → program graph → FlexLattice IR → instructions) and a
//! randomness-consuming **online pass** (stochastic fusions → percolation →
//! renormalization). A service sweeping many seeds therefore has two
//! structural redundancies the raw session API leaves on the table:
//!
//! 1. **Repeated compilation.** The offline artifact is a pure function of
//!    `(circuit, configuration)` — seed excluded — yet every call that
//!    starts from a circuit recompiles it. [`ProgramCache`] removes this: a
//!    bounded LRU keyed by the circuit's
//!    [structural hash](oneperc_circuit::Circuit::structural_hash) combined
//!    with the configuration's
//!    [fingerprint](crate::CompilerConfig::fingerprint), both stable 64-bit
//!    hashes. Compile-once-sweep-many becomes automatic for
//!    [`Session::sweep`](crate::Session::sweep) and every circuit-accepting
//!    entry point here; hit/miss/eviction counters surface through
//!    [`CacheStats`](crate::CacheStats) on the
//!    [`ExecutionReport`](crate::ExecutionReport).
//! 2. **Blocking admission.** `Session::submit` hands jobs to unbounded
//!    lane queues and redeems them by parking a thread. [`AsyncSession`]
//!    replaces that with a bounded admission window —
//!    [`try_submit`](AsyncSession::try_submit) refuses with
//!    [`SubmitError::Busy`] instead of queueing without limit, and
//!    [`submit_async`](AsyncSession::submit_async) returns an
//!    [`AdmissionFuture`] that waits for a slot without parking the
//!    executor thread — and returns [`JobFuture`]s: plain
//!    `std::future::Future`s wired through hand-rolled `Waker` plumbing
//!    (std only, no runtime dependency), consumable by any executor, by
//!    the built-in [`block_on`], or synchronously via [`JobFuture::wait`].
//!
//! # Multi-tenant serving
//!
//! The tier scales out to many concurrent tenants in one process:
//!
//! * **Per-key single-flight compilation.** [`ProgramCache`] misses
//!   compile *outside* the cache lock: distinct circuits compile
//!   concurrently, same-key submitters share one leader's compile, and
//!   `stats()`/`len()` answer immediately throughout. A compile that
//!   panics fails only its own caller — waiters elect a new leader and
//!   the cache keeps serving (no mutex poisoning).
//! * **One cache, many sessions.** Program keys are process-independent
//!   stable hashes, so a single `Arc<ProgramCache>` can back a whole
//!   fleet of sync and async sessions
//!   ([`SessionBuilder::shared_program_cache`](crate::SessionBuilder::shared_program_cache),
//!   [`AsyncSessionBuilder::shared_program_cache`]): one tenant's compile
//!   is every tenant's hit, byte-identically.
//! * **Cancellation sheds load.** Dropping a [`JobFuture`] (or
//!   [`JobHandle`](crate::JobHandle)) flips the job's
//!   [`CancelToken`](oneperc_percolation::CancelToken); the lane observes
//!   it between logical layers and stops, reporting
//!   [`LayerFailureReason::Cancelled`](crate::LayerFailureReason::Cancelled).
//!   Completed runs are never perturbed — the token is only read at
//!   checkpoints.
//! * **Per-tenant telemetry.** Every service report carries
//!   [`ExecutionReport::service`](crate::ExecutionReport::service): the
//!   admission queue depth at accept time, the queue wait before a lane
//!   picked the job up, and whether its program was a cache hit —
//!   stamped from the lookup's own atomic counter snapshot, never a racy
//!   post-hoc read.
//!
//! Determinism remains contractual end to end: per `(config, circuit,
//! seed)` the async path's reports are byte-identical — wall-clock and
//! cache/service telemetry aside, i.e. under
//! [`ExecutionReport::deterministic`](crate::ExecutionReport::deterministic)
//! — to the synchronous batch path's, whatever the admission capacity,
//! cache state, tenant count or poll order.
//!
//! # Example
//!
//! ```
//! use oneperc::service::{block_on, AsyncSession};
//! use oneperc::CompilerConfig;
//! use oneperc_circuit::benchmarks;
//!
//! let service = AsyncSession::builder(CompilerConfig::for_qubits(4, 0.9, 1))
//!     .lanes(2)
//!     .queue_depth(8)
//!     .build();
//! let circuit = benchmarks::qaoa(4, 1);
//!
//! // One compile, four executions, futures redeemed in any order.
//! let futures = service.sweep(&circuit, &[1, 2, 3, 4]).unwrap();
//! for future in futures.into_iter().rev() {
//!     assert!(block_on(future).is_complete());
//! }
//! let stats = service.cache_stats();
//! assert_eq!(stats.misses, 1);
//! ```
//!
//! Sharing one cache across a fleet:
//!
//! ```
//! use oneperc::service::AsyncSession;
//! use oneperc::{CompilerConfig, Session};
//! use oneperc_circuit::benchmarks;
//!
//! let config = CompilerConfig::for_qubits(4, 0.9, 1);
//! let front = Session::new(config);
//! // A second (async) session serving from the same cache: the compile
//! // below is a hit for it.
//! let back = AsyncSession::builder(config)
//!     .shared_program_cache(front.program_cache_handle())
//!     .build();
//! front.compile_cached(&benchmarks::qaoa(4, 1)).unwrap();
//! let lookup = back.session().compile_cached_lookup(&benchmarks::qaoa(4, 1)).unwrap();
//! assert!(lookup.hit);
//! ```

pub(crate) mod async_session;
pub(crate) mod cache;
pub(crate) mod future;

pub use async_session::{
    AdmissionFuture, AsyncSession, AsyncSessionBuilder, DEFAULT_QUEUE_DEPTH,
};
pub use cache::{program_key, CacheLookup, ProgramCache};
pub use future::{block_on, JobFuture, SubmitError};

// The cancellation token lives in the percolation crate (the engine polls
// it); re-export it here so service callers need no extra import.
pub use oneperc_percolation::CancelToken;
