//! The OnePerc service layer: async admission and content-addressed
//! compilation over warm [`Session`](crate::Session)s.
//!
//! The paper splits compilation into a deterministic **offline pass**
//! (circuit → program graph → FlexLattice IR → instructions) and a
//! randomness-consuming **online pass** (stochastic fusions → percolation →
//! renormalization). A service sweeping many seeds therefore has two
//! structural redundancies the raw session API leaves on the table:
//!
//! 1. **Repeated compilation.** The offline artifact is a pure function of
//!    `(circuit, configuration)` — seed excluded — yet every call that
//!    starts from a circuit recompiles it. [`ProgramCache`] removes this: a
//!    bounded LRU keyed by the circuit's
//!    [structural hash](oneperc_circuit::Circuit::structural_hash) combined
//!    with the configuration's
//!    [fingerprint](crate::CompilerConfig::fingerprint), both stable 64-bit
//!    hashes. Compile-once-sweep-many becomes automatic for
//!    [`Session::sweep`](crate::Session::sweep) and every circuit-accepting
//!    entry point here; hit/miss/eviction counters surface through
//!    [`CacheStats`](crate::CacheStats) on the
//!    [`ExecutionReport`](crate::ExecutionReport).
//! 2. **Blocking admission.** `Session::submit` hands jobs to unbounded
//!    lane queues and redeems them by parking a thread. [`AsyncSession`]
//!    replaces that with a bounded admission window —
//!    [`try_submit`](AsyncSession::try_submit) refuses with
//!    [`SubmitError::Busy`] instead of queueing without limit — and returns
//!    [`JobFuture`]s: plain `std::future::Future`s wired through
//!    hand-rolled `Waker` plumbing (std only, no runtime dependency),
//!    consumable by any executor, by the built-in [`block_on`], or
//!    synchronously via [`JobFuture::wait`].
//!
//! Determinism remains contractual end to end: per `(config, circuit,
//! seed)` the async path's reports are byte-identical — wall-clock and
//! cache telemetry aside, i.e. under
//! [`ExecutionReport::deterministic`](crate::ExecutionReport::deterministic)
//! — to the synchronous batch path's, whatever the admission capacity,
//! cache state or poll order.
//!
//! # Example
//!
//! ```
//! use oneperc::service::{block_on, AsyncSession};
//! use oneperc::CompilerConfig;
//! use oneperc_circuit::benchmarks;
//!
//! let service = AsyncSession::builder(CompilerConfig::for_qubits(4, 0.9, 1))
//!     .lanes(2)
//!     .queue_depth(8)
//!     .build();
//! let circuit = benchmarks::qaoa(4, 1);
//!
//! // One compile, four executions, futures redeemed in any order.
//! let futures = service.sweep(&circuit, &[1, 2, 3, 4]).unwrap();
//! for future in futures.into_iter().rev() {
//!     assert!(block_on(future).is_complete());
//! }
//! let stats = service.cache_stats();
//! assert_eq!(stats.misses, 1);
//! ```

pub(crate) mod async_session;
pub(crate) mod cache;
pub(crate) mod future;

pub use async_session::{AsyncSession, AsyncSessionBuilder, DEFAULT_QUEUE_DEPTH};
pub use cache::{program_key, ProgramCache};
pub use future::{block_on, JobFuture, SubmitError};
