//! [`JobFuture`]: a pending execution as a `std::future::Future`, plus a
//! minimal thread-parking executor ([`block_on`]).
//!
//! The wiring is hand-rolled on std primitives only (consistent with the
//! workspace's no-crates.io shim policy): a lane thread completes the
//! shared slot and wakes whatever `Waker` the last poll registered; a
//! synchronous caller can instead park on the built-in condvar via
//! [`JobFuture::wait`]. No executor is assumed — the future works under
//! [`block_on`], under any external runtime, or polled by hand.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use crate::sync::{thread, Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use oneperc_percolation::CancelToken;

use crate::compiler::CompileError;
use crate::report::ExecuteOutcome;

/// Why a submission was refused; see
/// [`AsyncSession::try_submit`](super::AsyncSession::try_submit).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded admission window is full: `capacity` executions are
    /// admitted and not yet complete. Retry after redeeming (or dropping)
    /// an outstanding future, or use the blocking
    /// [`AsyncSession::submit`](super::AsyncSession::submit).
    Busy {
        /// The admission capacity that was exhausted.
        capacity: usize,
    },
    /// The offline pass failed before anything was admitted (only the
    /// circuit-accepting entry points produce this).
    Compile(CompileError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy { capacity } => write!(
                f,
                "admission window full: {capacity} executions in flight; \
                 retry after one completes"
            ),
            SubmitError::Compile(e) => write!(f, "submission failed to compile: {e}"),
        }
    }
}

// Like `CompileError`, the cause is inlined in `Display`; `source()` stays
// `None` so error-chain reporters do not print it twice.
impl std::error::Error for SubmitError {}

impl From<CompileError> for SubmitError {
    fn from(e: CompileError) -> Self {
        SubmitError::Compile(e)
    }
}

/// The slot a lane thread fills and a poller drains.
#[derive(Debug, Default)]
struct JobState {
    outcome: Option<Result<ExecuteOutcome, String>>,
    /// Waker of the most recent poll, if the job was still pending then.
    waker: Option<Waker>,
}

/// Completion slot shared between the lane (producer) and the future
/// (consumer).
#[derive(Debug, Default)]
pub(crate) struct JobSlot {
    state: Mutex<JobState>,
    done: Condvar,
}

impl JobSlot {
    /// Fills the slot and wakes both kinds of waiters (registered `Waker`
    /// and condvar parkers). Called exactly once, from the lane thread.
    pub(crate) fn complete(&self, outcome: Result<ExecuteOutcome, String>) {
        let waker = {
            let mut state = self.state.lock().expect("job slot poisoned");
            debug_assert!(state.outcome.is_none(), "a job completes exactly once");
            state.outcome = Some(outcome);
            self.done.notify_all();
            state.waker.take()
        };
        // Wake outside the lock: the woken task may poll immediately.
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A pending [`AsyncSession`](super::AsyncSession) execution.
///
/// Implements [`Future`] — `.await` it under any executor (or the built-in
/// [`block_on`]) — and offers the synchronous [`JobFuture::wait`] for
/// callers without one.
///
/// **Dropping the future cancels the execution**: the lane observes the
/// token at its next layer checkpoint and sheds the remaining layers (an
/// already-finished job is unaffected). The admission slot is released on
/// completion either way, so an abandoned future never wedges the window.
/// Call [`JobFuture::cancel`] to shed work while keeping the future — it
/// then resolves to the partial outcome with
/// [`LayerFailureReason::Cancelled`](crate::LayerFailureReason::Cancelled).
///
/// # Panics
///
/// Polling (or waiting on) a job whose execution panicked re-raises the
/// relayed panic message, mirroring
/// [`JobHandle::wait`](crate::JobHandle::wait).
#[derive(Debug)]
#[must_use = "a dropped future cancels its job at the next layer checkpoint"]
pub struct JobFuture {
    slot: Arc<JobSlot>,
    seed: u64,
    cancel: CancelToken,
}

impl JobFuture {
    pub(crate) fn new(slot: Arc<JobSlot>, seed: u64, cancel: CancelToken) -> Self {
        JobFuture { slot, seed, cancel }
    }

    /// The seed of the submitted request.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Requests cancellation: the lane stops the run at its next layer
    /// checkpoint instead of forming the remaining logical layers.
    /// Idempotent; a run that finished first is unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the job's cancellation token, for cancelling from
    /// elsewhere (a deadline watchdog, an RPC disconnect handler) without
    /// holding the future.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Returns `true` once the outcome is ready (a subsequent poll or
    /// [`JobFuture::wait`] will not block).
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().expect("job slot poisoned").outcome.is_some()
    }

    /// Synchronous redemption: parks the calling thread until the lane
    /// completes the job. The executor-free twin of `.await`.
    pub fn wait(self) -> ExecuteOutcome {
        let mut state = self.slot.state.lock().expect("job slot poisoned");
        while state.outcome.is_none() {
            state = self.slot.done.wait(state).expect("job slot poisoned");
        }
        resolve(state.outcome.take().expect("checked above"))
    }
}

impl Drop for JobFuture {
    fn drop(&mut self) {
        // Shed the remaining work under overload: nobody can observe this
        // job's outcome any more. Cancelling after completion is a no-op.
        self.cancel.cancel();
    }
}

fn resolve(outcome: Result<ExecuteOutcome, String>) -> ExecuteOutcome {
    match outcome {
        Ok(outcome) => outcome,
        Err(message) => panic!("async session execution panicked: {message}"),
    }
}

impl Future for JobFuture {
    type Output = ExecuteOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.slot.state.lock().expect("job slot poisoned");
        if let Some(outcome) = state.outcome.take() {
            return Poll::Ready(resolve(outcome));
        }
        // Keep exactly one registered waker: replace a stale one, skip the
        // clone when the current task re-polls.
        match &state.waker {
            Some(waker) if waker.will_wake(cx.waker()) => {}
            _ => state.waker = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

/// Wakes a parked thread; the entire executor behind [`block_on`].
struct ThreadWaker(thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives any future to completion on the calling thread: poll, park until
/// woken, repeat. A deliberately minimal hand-rolled executor — enough to
/// consume [`JobFuture`]s (or `async` blocks combining them) without an
/// async runtime dependency.
///
/// # Example
///
/// ```
/// use oneperc::service::block_on;
///
/// assert_eq!(block_on(async { 2 + 2 }), 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            // A wake between the poll and this park turns the park into a
            // no-op (parking consumes the token), so no wakeup is lost.
            Poll::Pending => thread::park(),
        }
    }
}

/// Exhaustive interleaving checks for the completion slot (see
/// `CONCURRENCY.md`). Run with
/// `RUSTFLAGS="--cfg oneperc_model" cargo test -p oneperc model_`.
#[cfg(all(test, oneperc_model))]
mod model_tests {
    use super::*;

    fn outcome() -> ExecuteOutcome {
        ExecuteOutcome::Complete(crate::report::ExecutionReport {
            rsl_consumed: 7,
            ..Default::default()
        })
    }

    /// `complete` racing `wait`: the condvar protocol (outcome re-checked
    /// under the lock before every park) may not miss the completion
    /// under any schedule — a notify sent before the waiter parks must
    /// still be observed via the predicate.
    #[test]
    fn model_wait_never_misses_completion() {
        let report = oneperc_verify::model(|| {
            let slot = Arc::new(JobSlot::default());
            let future = JobFuture::new(Arc::clone(&slot), 0, CancelToken::new());
            let producer = thread::spawn(move || slot.complete(Ok(outcome())));
            assert_eq!(future.wait().report().rsl_consumed, 7);
            producer.join().unwrap();
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// `complete` racing `block_on`'s poll/park loop, with a concurrent
    /// canceller in the mix (the overload path: an RPC disconnect cancels
    /// while the lane finishes). The registered-waker handoff may not
    /// lose the wakeup: a `complete` that lands between the poll and the
    /// park must still unpark the executor thread.
    #[test]
    fn model_block_on_never_loses_the_wakeup() {
        let report = oneperc_verify::model(|| {
            let slot = Arc::new(JobSlot::default());
            let cancel = CancelToken::new();
            let future = JobFuture::new(Arc::clone(&slot), 0, cancel.clone());
            let producer = thread::spawn(move || slot.complete(Ok(outcome())));
            let canceller = thread::spawn(move || cancel.cancel());
            assert_eq!(block_on(future).report().rsl_consumed, 7);
            producer.join().unwrap();
            canceller.join().unwrap();
        });
        assert!(report.complete, "exploration must be exhaustive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn dummy_outcome() -> ExecuteOutcome {
        ExecuteOutcome::Complete(crate::report::ExecutionReport {
            rsl_consumed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn block_on_drives_a_plain_future() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn future_resolves_after_cross_thread_completion() {
        let slot = Arc::new(JobSlot::default());
        let future = JobFuture::new(Arc::clone(&slot), 5, CancelToken::new());
        assert!(!future.is_ready());
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.complete(Ok(dummy_outcome()));
        });
        let outcome = block_on(future);
        assert_eq!(outcome.report().rsl_consumed, 42);
        producer.join().unwrap();
    }

    #[test]
    fn already_completed_future_is_ready_immediately() {
        let slot = Arc::new(JobSlot::default());
        slot.complete(Ok(dummy_outcome()));
        let future = JobFuture::new(slot, 9, CancelToken::new());
        assert!(future.is_ready());
        assert_eq!(future.seed(), 9);
        assert_eq!(block_on(future).report().rsl_consumed, 42);
    }

    #[test]
    fn wait_parks_until_completion() {
        let slot = Arc::new(JobSlot::default());
        let future = JobFuture::new(Arc::clone(&slot), 1, CancelToken::new());
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.complete(Ok(dummy_outcome()));
        });
        assert_eq!(future.wait().report().rsl_consumed, 42);
        producer.join().unwrap();
    }

    #[test]
    fn panicked_execution_is_relayed_through_poll() {
        let slot = Arc::new(JobSlot::default());
        slot.complete(Err("boom".to_string()));
        let future = JobFuture::new(slot, 0, CancelToken::new());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| block_on(future)))
            .expect_err("relayed panic");
        let message = oneperc_percolation::panic_message(err);
        assert!(message.contains("async session execution panicked"));
        assert!(message.contains("boom"));
    }

    #[test]
    fn submit_error_formats_and_boxes() {
        let err = SubmitError::Busy { capacity: 3 };
        assert!(err.to_string().contains("3 executions in flight"));
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("admission window full"));
    }
}
