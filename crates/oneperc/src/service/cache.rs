//! Content-addressed LRU cache of compiled programs.
//!
//! The offline pass is a pure function of `(circuit, configuration)` —
//! only the online pass consumes randomness — so a service sweeping many
//! seeds over one circuit should compile exactly once. [`ProgramCache`]
//! makes that automatic: programs are keyed by the combination of the
//! circuit's [structural hash](oneperc_circuit::Circuit::structural_hash)
//! and the configuration's [fingerprint](crate::CompilerConfig::fingerprint)
//! (both stable 64-bit hashes, so keys are reproducible across processes),
//! stored as `Arc<CompiledProgram>` so a hit is one atomic increment, and
//! evicted least-recently-used once the configurable capacity fills.
//!
//! Lookups are **single-flight**: `get_or_try_insert_with` holds the cache
//! lock across a miss's compile, so concurrent submitters of the same
//! circuit wait for one compilation instead of racing to duplicate it.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use oneperc_circuit::{Circuit, StableHasher};

use crate::compiler::CompiledProgram;
use crate::config::CompilerConfig;
use crate::report::CacheStats;

/// The content address of a compiled program: circuit structure × compiler
/// configuration (seed excluded — see
/// [`CompilerConfig::fingerprint`](crate::CompilerConfig::fingerprint)).
pub fn program_key(config: &CompilerConfig, circuit: &Circuit) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(circuit.structural_hash());
    h.write_u64(config.fingerprint());
    h.finish()
}

#[derive(Debug)]
struct CacheEntry {
    program: Arc<CompiledProgram>,
    /// Logical timestamp of the last lookup that touched this entry.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, CacheEntry>,
    /// Monotone lookup counter driving the LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe, content-addressed cache of
/// [`CompiledProgram`]s.
///
/// Owned by every [`Session`](crate::Session) (capacity set through
/// [`SessionBuilder::program_cache`](crate::SessionBuilder::program_cache));
/// the cached entry points — [`Session::compile_cached`](crate::Session::compile_cached),
/// [`Session::sweep`](crate::Session::sweep),
/// [`AsyncSession::submit_circuit`](crate::service::AsyncSession::submit_circuit)
/// — all go through it. Capacity `0` disables caching: every lookup
/// compiles, nothing is retained (misses are still counted so the
/// disabled state is observable).
#[derive(Debug, Default)]
pub struct ProgramCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl ProgramCache {
    /// Creates a cache retaining at most `capacity` programs.
    pub fn new(capacity: usize) -> Self {
        ProgramCache { capacity, state: Mutex::new(CacheState::default()) }
    }

    /// Maximum resident programs (`0` = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Programs currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().expect("program cache poisoned").entries.len()
    }

    /// Returns `true` when no program is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("program cache poisoned");
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every resident program (counters are preserved — they describe
    /// lifetime traffic, not current residency).
    pub fn clear(&self) {
        self.state.lock().expect("program cache poisoned").entries.clear();
    }

    /// Looks up `key`, compiling via `compile` on a miss and retaining the
    /// result (evicting the least-recently-used entry when full). Returns
    /// the shared program and whether this lookup was a hit.
    ///
    /// The lock is held across `compile`, making concurrent lookups of the
    /// same key single-flight: one submitter compiles, the rest wait and
    /// hit. A failed compile inserts nothing and counts as a miss.
    ///
    /// # Errors
    ///
    /// Propagates whatever `compile` returns; the cache is unchanged apart
    /// from the miss counter.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<CompiledProgram, E>,
    ) -> Result<(Arc<CompiledProgram>, bool), E> {
        let mut state = self.state.lock().expect("program cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.entries.get_mut(&key) {
            entry.last_used = tick;
            let program = Arc::clone(&entry.program);
            state.hits += 1;
            return Ok((program, true));
        }
        state.misses += 1;
        let program = Arc::new(compile()?);
        if self.capacity > 0 {
            if state.entries.len() >= self.capacity {
                // O(entries) LRU scan — capacities are small (a service
                // holds a handful of distinct programs hot at a time).
                if let Some(&lru) = state
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                {
                    state.entries.remove(&lru);
                    state.evictions += 1;
                }
            }
            state
                .entries
                .insert(key, CacheEntry { program: Arc::clone(&program), last_used: tick });
        }
        Ok((program, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use oneperc_circuit::benchmarks;

    fn config() -> CompilerConfig {
        CompilerConfig::for_sensitivity(36, 3, 0.85, 1)
    }

    fn compile(config: &CompilerConfig, circuit: &Circuit) -> CompiledProgram {
        crate::compiler::run_offline_pass(config, circuit).expect("offline pass succeeds")
    }

    #[test]
    fn hit_returns_the_same_shared_program() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(4);
        let key = program_key(&cfg, &circuit);
        let (first, hit1) = cache
            .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
            .unwrap();
        let (second, hit2) = cache
            .get_or_try_insert_with(key, || -> Result<_, ()> { panic!("hit must not recompile") })
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second), "hit shares the identical allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_eviction_under_tiny_capacity() {
        let cfg = config();
        let a = benchmarks::qaoa(4, 2);
        let b = benchmarks::qft(4);
        let cache = ProgramCache::new(1);
        let key_a = program_key(&cfg, &a);
        let key_b = program_key(&cfg, &b);
        assert_ne!(key_a, key_b);

        let ok = |circuit: &Circuit| Ok::<_, ()>(compile(&cfg, circuit));
        cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap(); // miss, resident: A
        cache.get_or_try_insert_with(key_b, || ok(&b)).unwrap(); // miss, evicts A
        cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap(); // miss again, evicts B
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 3, 2));
        assert_eq!(stats.entries, 1);
        // The survivor is A: looking it up now hits.
        let (_, hit) = cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap();
        assert!(hit);
    }

    #[test]
    fn lru_order_tracks_recency_not_insertion() {
        let cfg = config();
        let a = benchmarks::qaoa(4, 2);
        let b = benchmarks::qft(4);
        let c = benchmarks::rca(4);
        let cache = ProgramCache::new(2);
        let ok = |circuit: &Circuit| Ok::<_, ()>(compile(&cfg, circuit));
        let (ka, kb, kc) =
            (program_key(&cfg, &a), program_key(&cfg, &b), program_key(&cfg, &c));
        cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        cache.get_or_try_insert_with(kb, || ok(&b)).unwrap();
        // Touch A so B becomes the LRU entry, then insert C.
        cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        cache.get_or_try_insert_with(kc, || ok(&c)).unwrap();
        let (_, a_hit) = cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        assert!(a_hit, "recently touched entry survived");
        let (_, b_hit) = cache.get_or_try_insert_with(kb, || ok(&b)).unwrap();
        assert!(!b_hit, "LRU entry was evicted");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(0);
        let key = program_key(&cfg, &circuit);
        for _ in 0..3 {
            let (_, hit) = cache
                .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
                .unwrap();
            assert!(!hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_compiles_insert_nothing() {
        let cache = ProgramCache::new(4);
        let err: Result<_, &str> = cache.get_or_try_insert_with(7, || Err("mapping failed"));
        assert_eq!(err.unwrap_err(), "mapping failed");
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
    }

    #[test]
    fn seed_does_not_split_keys_but_knobs_do() {
        let circuit = benchmarks::qaoa(4, 2);
        let base = config();
        assert_eq!(program_key(&base, &circuit), program_key(&base.with_seed(99), &circuit));
        assert_ne!(
            program_key(&base, &circuit),
            program_key(&base.with_refresh_period(Some(7)), &circuit)
        );
        assert_ne!(
            program_key(&base, &circuit),
            program_key(&base, &benchmarks::qaoa(4, 3))
        );
    }

    #[test]
    fn clear_preserves_lifetime_counters() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(4);
        let key = program_key(&cfg, &circuit);
        cache
            .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
