//! Content-addressed LRU cache of compiled programs.
//!
//! The offline pass is a pure function of `(circuit, configuration)` —
//! only the online pass consumes randomness — so a service sweeping many
//! seeds over one circuit should compile exactly once. [`ProgramCache`]
//! makes that automatic: programs are keyed by the combination of the
//! circuit's [structural hash](oneperc_circuit::Circuit::structural_hash)
//! and the configuration's [fingerprint](crate::CompilerConfig::fingerprint)
//! (both stable 64-bit hashes, so keys are reproducible across processes —
//! which is also what makes one cache safely shareable across
//! [`Session`](crate::Session)s: see
//! [`SessionBuilder::shared_program_cache`](crate::SessionBuilder::shared_program_cache)),
//! stored as `Arc<CompiledProgram>` so a hit is one atomic increment, and
//! evicted least-recently-used once the configurable capacity fills.
//!
//! # Per-key single-flight
//!
//! Misses are **single-flight per key**, and the compile itself runs
//! **outside the cache lock**:
//!
//! * Concurrent submitters of the *same* key elect one leader; the rest
//!   wait on a condvar and are served the leader's artifact as a hit.
//! * Submitters of *distinct* keys compile concurrently — the state lock
//!   is only ever held for map bookkeeping, never across a compile.
//! * Observability reads ([`ProgramCache::stats`],
//!   [`ProgramCache::len`]) never block behind anyone's compile.
//! * A compile that fails — by returning an error **or by panicking** —
//!   resolves its in-flight entry on the way out (a drop guard), so
//!   waiters wake, re-check, and elect a new leader instead of hanging;
//!   the panic unwinds only through the leader's own caller and the cache
//!   keeps serving every other key. The state mutex is never poisoned
//!   because no user code runs under it.
//!
//! With capacity `0` (caching disabled) there is nothing for a waiter to
//! be served afterwards, so the single-flight map is bypassed: every
//! lookup compiles privately.

use std::collections::{HashMap, HashSet};
use crate::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use oneperc_circuit::{Circuit, StableHasher};

use crate::compiler::CompiledProgram;
use crate::config::CompilerConfig;
use crate::report::CacheStats;

/// The content address of a compiled program: circuit structure × compiler
/// configuration (seed excluded — see
/// [`CompilerConfig::fingerprint`](crate::CompilerConfig::fingerprint)).
pub fn program_key(config: &CompilerConfig, circuit: &Circuit) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(circuit.structural_hash());
    h.write_u64(config.fingerprint());
    h.finish()
}

/// The result of one cache lookup: the shared program plus the per-lookup
/// telemetry stamped on reports.
///
/// `stats` is snapshotted **atomically with the lookup's own counter
/// update** (under the same state-lock critical section), so a report
/// stamped from it reflects exactly the traffic up to and including this
/// lookup — concurrent tenants cannot smear the numbers between the
/// lookup and a separate [`ProgramCache::stats`] call.
#[derive(Debug, Clone)]
#[must_use]
pub struct CacheLookup {
    /// The compiled artifact (shared allocation).
    pub program: Arc<CompiledProgram>,
    /// Whether this lookup was answered from the cache (waiters served by
    /// another submitter's in-flight compile count as hits).
    pub hit: bool,
    /// Counter snapshot taken atomically as the lookup resolved.
    pub stats: CacheStats,
}

#[derive(Debug)]
struct CacheEntry {
    program: Arc<CompiledProgram>,
    /// Logical timestamp of the last lookup that touched this entry.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, CacheEntry>,
    /// Keys whose compile is in flight: a leader is running the offline
    /// pass outside the lock and will resolve the key (insert + notify, or
    /// remove + notify on failure).
    in_flight: HashSet<u64>,
    /// Monotone lookup counter driving the LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheState {
    fn snapshot(&self, capacity: usize) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity,
        }
    }
}

/// A bounded, thread-safe, content-addressed cache of
/// [`CompiledProgram`]s with per-key single-flight misses.
///
/// Owned by — or [shared across](crate::SessionBuilder::shared_program_cache)
/// — [`Session`](crate::Session)s; the cached entry points
/// ([`Session::compile_cached`](crate::Session::compile_cached),
/// [`Session::sweep`](crate::Session::sweep),
/// [`AsyncSession::submit_circuit`](crate::service::AsyncSession::submit_circuit))
/// all go through it. Capacity `0` disables caching: every lookup
/// compiles, nothing is retained (misses are still counted so the
/// disabled state is observable).
#[derive(Debug, Default)]
pub struct ProgramCache {
    capacity: usize,
    state: Mutex<CacheState>,
    /// Signalled whenever an in-flight compile resolves (successfully or
    /// not); waiters re-check the map and either hit or take over.
    resolved: Condvar,
}

/// Resolves `guard.key`'s in-flight entry on every leader exit path —
/// including a panicking compile — so waiters never hang and the panic
/// stays confined to the leader's own caller.
struct InFlightGuard<'a> {
    cache: &'a ProgramCache,
    key: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.cache.lock_state();
        state.in_flight.remove(&self.key);
        drop(state);
        self.cache.resolved.notify_all();
    }
}

impl ProgramCache {
    /// Creates a cache retaining at most `capacity` programs.
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            capacity,
            state: Mutex::new(CacheState::default()),
            resolved: Condvar::new(),
        }
    }

    /// The state lock, recovering from poisoning. No user code ever runs
    /// under this lock (compiles happen outside it), so poisoning cannot
    /// leave the map mid-mutation — recovering keeps the cache serving
    /// even if an unforeseen panic crosses a guard.
    fn lock_state(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum resident programs (`0` = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Programs currently resident. Never blocks behind an in-flight
    /// compile.
    pub fn len(&self) -> usize {
        self.lock_state().entries.len()
    }

    /// Returns `true` when no program is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compiles currently in flight (leaders running the offline pass).
    pub fn in_flight(&self) -> usize {
        self.lock_state().in_flight.len()
    }

    /// Snapshot of the hit/miss/eviction counters. Never blocks behind an
    /// in-flight compile.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock_state();
        state.snapshot(self.capacity)
    }

    /// Drops every resident program (counters are preserved — they describe
    /// lifetime traffic, not current residency).
    pub fn clear(&self) {
        self.lock_state().entries.clear();
    }

    /// Looks up `key`, compiling via `compile` on a miss and retaining the
    /// result (evicting the least-recently-used entry when full). Returns
    /// the shared program, whether this lookup hit, and the counter
    /// snapshot observed atomically as the lookup resolved.
    ///
    /// Misses are single-flight **per key**: one concurrent submitter
    /// becomes the leader and runs `compile` with no lock held, the rest
    /// wait and are served the inserted artifact as a hit. Distinct keys
    /// compile concurrently, and [`ProgramCache::stats`] /
    /// [`ProgramCache::len`] stay responsive throughout.
    ///
    /// # Errors
    ///
    /// Propagates whatever `compile` returns; the failed key's in-flight
    /// entry is resolved (waiters re-check and elect a new leader) and the
    /// cache is unchanged apart from the miss counter. A **panicking**
    /// `compile` behaves the same — the panic unwinds through this caller
    /// only, waiters retry, and the cache keeps serving.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<CompiledProgram, E>,
    ) -> Result<CacheLookup, E> {
        let mut state = self.lock_state();
        loop {
            if state.entries.contains_key(&key) {
                state.tick += 1;
                state.hits += 1;
                let tick = state.tick;
                let entry = state.entries.get_mut(&key).expect("entry just observed");
                entry.last_used = tick;
                let program = Arc::clone(&entry.program);
                let stats = state.snapshot(self.capacity);
                return Ok(CacheLookup { program, hit: true, stats });
            }
            // With retention disabled there is nothing to share afterwards;
            // waiting would serialize lookups for no benefit.
            if self.capacity > 0 && state.in_flight.contains(&key) {
                state = self
                    .resolved
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            break;
        }
        // This lookup is the leader for `key` (or an uncached compile).
        state.misses += 1;
        if self.capacity > 0 {
            state.in_flight.insert(key);
        }
        drop(state);

        let guard = InFlightGuard { cache: self, key };
        // No lock held here: distinct keys compile concurrently, and a
        // panic unwinds through `guard`, waking this key's waiters.
        let program = Arc::new(compile()?);

        let mut state = self.lock_state();
        if self.capacity > 0 {
            if state.entries.len() >= self.capacity {
                // O(entries) LRU scan — capacities are small (a service
                // holds a handful of distinct programs hot at a time).
                if let Some(&lru) = state
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                {
                    state.entries.remove(&lru);
                    state.evictions += 1;
                }
            }
            state.tick += 1;
            let tick = state.tick;
            state
                .entries
                .insert(key, CacheEntry { program: Arc::clone(&program), last_used: tick });
        }
        let stats = state.snapshot(self.capacity);
        drop(state);
        // Entry resident (when retained): resolve the in-flight marker and
        // wake waiters, who will now hit.
        drop(guard);
        Ok(CacheLookup { program, hit: false, stats })
    }
}

/// Exhaustive interleaving checks for the single-flight protocol (see
/// `CONCURRENCY.md`). Run with
/// `RUSTFLAGS="--cfg oneperc_model" cargo test -p oneperc model_`.
///
/// The compile closure clones one artifact built outside the model (the
/// offline pass is pure compute with no synchronization, so re-running it
/// inside every explored execution would only slow the search down).
#[cfg(all(test, oneperc_model))]
mod model_tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::thread;
    use oneperc_circuit::benchmarks;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::OnceLock;

    fn program() -> CompiledProgram {
        static PROGRAM: OnceLock<CompiledProgram> = OnceLock::new();
        PROGRAM
            .get_or_init(|| {
                let config = CompilerConfig::for_sensitivity(36, 3, 0.85, 1);
                let circuit = benchmarks::qaoa(4, 2);
                crate::compiler::run_offline_pass(&config, &circuit)
                    .expect("offline pass succeeds")
            })
            .clone()
    }

    /// Three submitters of one key elect exactly one leader under every
    /// interleaving: one compile, one miss, two hits served from the
    /// leader's artifact (possibly via the condvar wait).
    #[test]
    fn model_single_flight_elects_exactly_one_leader() {
        let _ = program(); // materialize outside the model (std mode)
        let report = oneperc_verify::model(|| {
            let cache = Arc::new(ProgramCache::new(4));
            let compiles = Arc::new(AtomicUsize::new(0));
            let submitters: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let compiles = Arc::clone(&compiles);
                    thread::spawn(move || {
                        let lookup = cache
                            .get_or_try_insert_with(7, || {
                                compiles.fetch_add(1, Ordering::SeqCst);
                                Ok::<_, String>(program())
                            })
                            .expect("compile cannot fail");
                        lookup.hit
                    })
                })
                .collect();
            let root = cache
                .get_or_try_insert_with(7, || {
                    compiles.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, String>(program())
                })
                .expect("compile cannot fail");
            let hits = submitters
                .into_iter()
                .map(|s| s.join().unwrap())
                .filter(|&hit| hit)
                .count()
                + usize::from(root.hit);
            assert_eq!(compiles.load(Ordering::SeqCst), 1, "single-flight");
            assert_eq!(hits, 2, "exactly one lookup may miss");
            let stats = cache.stats();
            assert_eq!((stats.hits, stats.misses), (2, 1));
            assert_eq!(cache.in_flight(), 0);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// A leader whose compile panics resolves its in-flight entry via
    /// `InFlightGuard` on the unwind path, so a concurrent waiter takes
    /// over instead of hanging — under every interleaving, including the
    /// waiter arriving before, during, and after the panic.
    #[test]
    fn model_leader_panic_lets_a_waiter_take_over() {
        let _ = program();
        let report = oneperc_verify::model(|| {
            let cache = Arc::new(ProgramCache::new(4));
            let panicker = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        cache.get_or_try_insert_with(7, || -> Result<CompiledProgram, String> {
                            panic!("planted compile failure")
                        })
                    }));
                    // Either this submitter led (its own panic comes back)
                    // or it lost the race and was served the follower's
                    // healthy artifact — in which case its closure never
                    // ran, so the lookup must have been a hit.
                    match result {
                        Err(_) => {}
                        Ok(lookup) => {
                            assert!(lookup.expect("hit cannot fail").hit);
                        }
                    }
                })
            };
            let follower = {
                let cache = Arc::clone(&cache);
                // A waiter woken by the leader's failure re-checks and
                // takes over as the new leader inside the lookup itself —
                // the failure never propagates to it, so no retry is
                // needed here.
                thread::spawn(move || {
                    cache
                        .get_or_try_insert_with(7, || Ok::<_, String>(program()))
                        .expect("healthy compile cannot fail")
                })
            };
            panicker.join().unwrap();
            let _lookup = follower.join().unwrap();
            assert_eq!(cache.in_flight(), 0, "in-flight entry must resolve");
            assert_eq!(cache.len(), 1, "healthy artifact must be resident");
        });
        assert!(report.complete, "exploration must be exhaustive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use oneperc_circuit::benchmarks;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn config() -> CompilerConfig {
        CompilerConfig::for_sensitivity(36, 3, 0.85, 1)
    }

    fn compile(config: &CompilerConfig, circuit: &Circuit) -> CompiledProgram {
        crate::compiler::run_offline_pass(config, circuit).expect("offline pass succeeds")
    }

    /// A reusable two-phase gate: waiters park until `open`, with a
    /// watchdog so a regression hangs the assertion, not CI.
    #[derive(Default)]
    struct Gate {
        open: Mutex<bool>,
        bell: Condvar,
    }

    impl Gate {
        fn open(&self) {
            *self.open.lock().unwrap() = true;
            self.bell.notify_all();
        }

        fn wait(&self, what: &str) {
            let guard = self.open.lock().unwrap();
            let (guard, timeout) = self
                .bell
                .wait_timeout_while(guard, Duration::from_secs(10), |open| !*open)
                .unwrap();
            assert!(!timeout.timed_out(), "{what} never happened: gate timed out");
            drop(guard);
        }
    }

    #[test]
    fn hit_returns_the_same_shared_program() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(4);
        let key = program_key(&cfg, &circuit);
        let first = cache
            .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
            .unwrap();
        let second = cache
            .get_or_try_insert_with(key, || -> Result<_, ()> { panic!("hit must not recompile") })
            .unwrap();
        assert!(!first.hit);
        assert!(second.hit);
        assert!(
            Arc::ptr_eq(&first.program, &second.program),
            "hit shares the identical allocation"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        // Per-lookup snapshots saw their own resolution.
        assert_eq!((first.stats.hits, first.stats.misses), (0, 1));
        assert_eq!((second.stats.hits, second.stats.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_under_tiny_capacity() {
        let cfg = config();
        let a = benchmarks::qaoa(4, 2);
        let b = benchmarks::qft(4);
        let cache = ProgramCache::new(1);
        let key_a = program_key(&cfg, &a);
        let key_b = program_key(&cfg, &b);
        assert_ne!(key_a, key_b);

        let ok = |circuit: &Circuit| Ok::<_, ()>(compile(&cfg, circuit));
        let _ = cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap(); // miss, resident: A
        let _ = cache.get_or_try_insert_with(key_b, || ok(&b)).unwrap(); // miss, evicts A
        let _ = cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap(); // miss again, evicts B
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 3, 2));
        assert_eq!(stats.entries, 1);
        // The survivor is A: looking it up now hits.
        let lookup = cache.get_or_try_insert_with(key_a, || ok(&a)).unwrap();
        assert!(lookup.hit);
    }

    #[test]
    fn lru_order_tracks_recency_not_insertion() {
        let cfg = config();
        let a = benchmarks::qaoa(4, 2);
        let b = benchmarks::qft(4);
        let c = benchmarks::rca(4);
        let cache = ProgramCache::new(2);
        let ok = |circuit: &Circuit| Ok::<_, ()>(compile(&cfg, circuit));
        let (ka, kb, kc) =
            (program_key(&cfg, &a), program_key(&cfg, &b), program_key(&cfg, &c));
        let _ = cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        let _ = cache.get_or_try_insert_with(kb, || ok(&b)).unwrap();
        // Touch A so B becomes the LRU entry, then insert C.
        let _ = cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        let _ = cache.get_or_try_insert_with(kc, || ok(&c)).unwrap();
        let a_again = cache.get_or_try_insert_with(ka, || ok(&a)).unwrap();
        assert!(a_again.hit, "recently touched entry survived");
        let b_again = cache.get_or_try_insert_with(kb, || ok(&b)).unwrap();
        assert!(!b_again.hit, "LRU entry was evicted");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(0);
        let key = program_key(&cfg, &circuit);
        for _ in 0..3 {
            let lookup = cache
                .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
                .unwrap();
            assert!(!lookup.hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_compiles_insert_nothing() {
        let cache = ProgramCache::new(4);
        let err: Result<_, &str> = cache.get_or_try_insert_with(7, || Err("mapping failed"));
        assert_eq!(err.unwrap_err(), "mapping failed");
        assert!(cache.is_empty());
        assert_eq!(cache.in_flight(), 0, "a failed compile resolves its in-flight entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
    }

    #[test]
    fn seed_does_not_split_keys_but_knobs_do() {
        let circuit = benchmarks::qaoa(4, 2);
        let base = config();
        assert_eq!(program_key(&base, &circuit), program_key(&base.with_seed(99), &circuit));
        assert_ne!(
            program_key(&base, &circuit),
            program_key(&base.with_refresh_period(Some(7)), &circuit)
        );
        assert_ne!(
            program_key(&base, &circuit),
            program_key(&base, &benchmarks::qaoa(4, 3))
        );
    }

    #[test]
    fn clear_preserves_lifetime_counters() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(4);
        let key = program_key(&cfg, &circuit);
        let _ = cache
            .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn panicking_compile_does_not_poison_the_cache() {
        // The PR-7 satellite: before the per-key rewrite, a panic inside
        // the compile closure unwound while the state mutex was held,
        // poisoning it — every later `stats()`/`len()`/lookup then
        // panicked on `expect("program cache poisoned")`. Now the compile
        // runs outside the lock: the panic is the leader's alone and the
        // cache keeps serving (lane-style recovery).
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = ProgramCache::new(4);
        let key = program_key(&cfg, &circuit);

        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _ = cache.get_or_try_insert_with(key, || -> Result<CompiledProgram, ()> {
                panic!("compile exploded")
            });
        }));
        assert!(panicked.is_err());

        // Observability is intact…
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.in_flight(), 0, "the panicked key resolved its in-flight entry");
        assert_eq!(cache.stats().misses, 1, "the doomed attempt still counted");
        // …and so is service: the same key compiles fine afterwards.
        let lookup = cache
            .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
            .unwrap();
        assert!(!lookup.hit);
        let again = cache
            .get_or_try_insert_with(key, || -> Result<_, ()> { panic!("must hit") })
            .unwrap();
        assert!(again.hit);
    }

    #[test]
    fn stats_and_len_do_not_block_behind_a_compile() {
        // The leader parks inside its compile on `entered`/`release`;
        // meanwhile the main thread reads stats()/len() — before the
        // rewrite this deadlocked (the compile held the state lock).
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = Arc::new(ProgramCache::new(4));
        let key = program_key(&cfg, &circuit);
        let entered = Arc::new(Gate::default());
        let release = Arc::new(Gate::default());

        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                cache
                    .get_or_try_insert_with(key, || {
                        entered.open();
                        release.wait("leader released");
                        Ok::<_, ()>(compile(&cfg, &circuit))
                    })
                    .unwrap()
            })
        };

        entered.wait("leader entered its compile");
        // The compile is provably in flight; reads must answer immediately.
        assert_eq!(cache.in_flight(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 1);
        release.open();
        let lookup = leader.join().expect("leader completed");
        assert!(!lookup.hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_compile_concurrently() {
        // Both compiles rendezvous inside their closures: if misses still
        // serialized on one lock, neither could reach the barrier while
        // the other is in flight and the gate watchdog would fire.
        let cfg = config();
        let cache = Arc::new(ProgramCache::new(4));
        let arrived = Arc::new(AtomicUsize::new(0));
        let both_in = Arc::new(Gate::default());

        let spawn = |circuit: Circuit| {
            let cache = Arc::clone(&cache);
            let arrived = Arc::clone(&arrived);
            let both_in = Arc::clone(&both_in);
            std::thread::spawn(move || {
                let key = program_key(&cfg, &circuit);
                cache
                    .get_or_try_insert_with(key, || {
                        if arrived.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                            both_in.open();
                        }
                        both_in.wait("the second distinct-key compile");
                        Ok::<_, ()>(compile(&cfg, &circuit))
                    })
                    .unwrap()
            })
        };

        let a = spawn(benchmarks::qaoa(4, 2));
        let b = spawn(benchmarks::qft(4));
        let la = a.join().expect("first compile");
        let lb = b.join().expect("second compile");
        assert!(!la.hit && !lb.hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn same_key_waiters_share_the_leaders_compile() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = Arc::new(ProgramCache::new(4));
        let key = program_key(&cfg, &circuit);
        let compiles = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(Gate::default());
        let release = Arc::new(Gate::default());

        let leader = {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&compiles);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            let circuit = circuit.clone();
            std::thread::spawn(move || {
                cache
                    .get_or_try_insert_with(key, || {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        entered.open();
                        release.wait("leader released");
                        Ok::<_, ()>(compile(&cfg, &circuit))
                    })
                    .unwrap()
            })
        };
        entered.wait("leader entered its compile");

        // Waiters arrive while the key is provably in flight.
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let compiles = Arc::clone(&compiles);
                let circuit = circuit.clone();
                std::thread::spawn(move || {
                    cache
                        .get_or_try_insert_with(key, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, ()>(compile(&cfg, &circuit))
                        })
                        .unwrap()
                })
            })
            .collect();
        // Give the waiters a moment to park on the condvar, then release.
        std::thread::sleep(Duration::from_millis(20));
        release.open();

        let led = leader.join().expect("leader");
        assert!(!led.hit);
        for waiter in waiters {
            let lookup = waiter.join().expect("waiter");
            assert!(lookup.hit, "waiters are served the leader's artifact");
            assert!(Arc::ptr_eq(&lookup.program, &led.program));
        }
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "exactly one compile ran");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 1));
    }

    #[test]
    fn waiters_take_over_after_a_leader_panic() {
        let cfg = config();
        let circuit = benchmarks::qaoa(4, 2);
        let cache = Arc::new(ProgramCache::new(4));
        let key = program_key(&cfg, &circuit);
        let entered = Arc::new(Gate::default());
        let release = Arc::new(Gate::default());

        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    let _ = cache.get_or_try_insert_with(key, || -> Result<CompiledProgram, ()> {
                        entered.open();
                        release.wait("doomed leader released");
                        panic!("compile exploded mid-flight")
                    });
                }))
            })
        };
        entered.wait("doomed leader entered its compile");

        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_try_insert_with(key, || Ok::<_, ()>(compile(&cfg, &circuit)))
                    .unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        release.open();

        assert!(leader.join().expect("leader thread").is_err(), "leader observed its panic");
        let lookup = waiter.join().expect("waiter thread");
        assert!(!lookup.hit, "the waiter took over as the new leader");
        assert_eq!(cache.stats().misses, 2, "both attempts counted as misses");
        assert_eq!(cache.len(), 1, "the takeover's artifact is resident");
    }
}
