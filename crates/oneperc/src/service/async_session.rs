//! [`AsyncSession`]: the runtime-agnostic async front-end over a warm
//! [`Session`].
//!
//! The synchronous session's `submit` is a channel handshake: the caller
//! eventually parks on a [`JobHandle`](crate::JobHandle) and lane queues
//! grow without bound. An embedding RPC server needs the opposite shape —
//! non-blocking admission with explicit backpressure, and completion as a
//! [`Future`](std::future::Future). `AsyncSession` provides both:
//!
//! * **Bounded admission.** At most `queue_depth` executions may be
//!   admitted-and-incomplete at once. [`AsyncSession::try_submit`] refuses
//!   with [`SubmitError::Busy`] when the window is full — the signal an RPC
//!   layer turns into load-shedding — while [`AsyncSession::submit`] parks
//!   until a slot frees. Admission is released by job *completion*, not by
//!   future redemption, so an abandoned future never wedges the window.
//! * **Futures, no runtime.** [`JobFuture`] is a plain
//!   `std::future::Future` wired through hand-rolled `Waker` plumbing: the
//!   lane thread completes a shared slot and wakes the registered waker.
//!   It works under any executor, under the built-in
//!   [`block_on`](super::block_on), or via the synchronous
//!   [`JobFuture::wait`].
//! * **Content-addressed compilation.** The circuit-accepting entry points
//!   ([`AsyncSession::submit_circuit`], [`AsyncSession::sweep`]) resolve
//!   programs through the underlying session's
//!   [`ProgramCache`](super::ProgramCache), so a multi-seed sweep compiles
//!   exactly once and every report carries the cache counters.
//!
//! Determinism is unchanged by the front-end: per `(config, circuit,
//! seed)` an async execution's report is byte-identical (wall-clock and
//! cache telemetry aside — compare with
//! [`ExecutionReport::deterministic`](crate::ExecutionReport::deterministic))
//! to the synchronous [`Session::execute_batch`] path, whatever the
//! admission capacity or poll order. `tests/service_determinism.rs` pins
//! this.

use std::sync::{Arc, Condvar, Mutex};

use oneperc_circuit::Circuit;

use crate::compiler::{CompileError, CompiledProgram};
use crate::config::CompilerConfig;
use crate::report::CacheStats;
use crate::session::{ExecutionRequest, Session, SessionBuilder};

use super::future::{JobFuture, JobSlot, SubmitError};

/// Counting semaphore bounding admitted-and-incomplete executions.
///
/// Hand-rolled on `Mutex` + `Condvar` (std has no semaphore): acquire on
/// submission, release from the lane-side completion callback.
#[derive(Debug)]
pub(crate) struct Admission {
    capacity: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission window needs at least one slot");
        Admission { capacity, in_flight: Mutex::new(0), freed: Condvar::new() }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn in_flight(&self) -> usize {
        *self.in_flight.lock().expect("admission window poisoned")
    }

    /// Claims a slot if one is free.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut in_flight = self.in_flight.lock().expect("admission window poisoned");
        if *in_flight < self.capacity {
            *in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Parks until a slot frees, then claims it.
    pub(crate) fn acquire(&self) {
        let mut in_flight = self.in_flight.lock().expect("admission window poisoned");
        while *in_flight >= self.capacity {
            in_flight = self.freed.wait(in_flight).expect("admission window poisoned");
        }
        *in_flight += 1;
    }

    /// Returns a slot and wakes one parked submitter.
    pub(crate) fn release(&self) {
        let mut in_flight = self.in_flight.lock().expect("admission window poisoned");
        debug_assert!(*in_flight > 0, "release without acquire");
        *in_flight -= 1;
        drop(in_flight);
        self.freed.notify_one();
    }
}

/// Configures an [`AsyncSession`] before its threads spawn.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct AsyncSessionBuilder {
    inner: SessionBuilder,
    queue_depth: usize,
}

/// Default admission-window depth: deep enough to keep a handful of lanes
/// busy with queued work, shallow enough that backpressure arrives before
/// queues hide seconds of latency.
pub const DEFAULT_QUEUE_DEPTH: usize = 16;

impl AsyncSessionBuilder {
    /// Number of persistent execution lanes of the underlying session.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.inner = self.inner.lanes(lanes);
        self
    }

    /// Capacity of the compiled-program cache (see
    /// [`SessionBuilder::program_cache`]).
    pub fn program_cache(mut self, capacity: usize) -> Self {
        self.inner = self.inner.program_cache(capacity);
        self
    }

    /// Overrides the classical-memory model of the underlying session.
    pub fn memory_model(mut self, model: crate::MemoryModel) -> Self {
        self.inner = self.inner.memory_model(model);
        self
    }

    /// Maximum admitted-and-incomplete executions before
    /// [`AsyncSession::try_submit`] answers [`SubmitError::Busy`]
    /// (default [`DEFAULT_QUEUE_DEPTH`]).
    ///
    /// # Panics
    ///
    /// Panics when `depth` is zero.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "admission window needs at least one slot");
        self.queue_depth = depth;
        self
    }

    /// Spawns the underlying session and wraps it in the async front-end.
    pub fn build(self) -> AsyncSession {
        AsyncSession {
            session: self.inner.build(),
            admission: Arc::new(Admission::new(self.queue_depth)),
        }
    }
}

/// The async front-end: a warm [`Session`] behind a bounded admission
/// window, speaking [`JobFuture`]s. See the [module docs](self) for the
/// architecture and determinism contract.
///
/// # Example
///
/// ```
/// use oneperc::service::{block_on, AsyncSession};
/// use oneperc::CompilerConfig;
/// use oneperc_circuit::benchmarks;
///
/// let service = AsyncSession::new(CompilerConfig::for_qubits(4, 0.9, 1));
/// let circuit = benchmarks::qaoa(4, 1);
/// // Compiles once (content-addressed), executes per seed.
/// let futures = service.sweep(&circuit, &[1, 2, 3]).unwrap();
/// for future in futures {
///     assert!(block_on(future).is_complete());
/// }
/// assert_eq!(service.cache_stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct AsyncSession {
    session: Session,
    admission: Arc<Admission>,
}

impl AsyncSession {
    /// Builds a single-lane async session with default depth and cache
    /// capacity (see [`AsyncSession::builder`] for the knobs).
    pub fn new(config: CompilerConfig) -> Self {
        Self::builder(config).build()
    }

    /// Starts configuring an async session.
    pub fn builder(config: CompilerConfig) -> AsyncSessionBuilder {
        AsyncSessionBuilder { inner: Session::builder(config), queue_depth: DEFAULT_QUEUE_DEPTH }
    }

    /// The warm session underneath (compile, synchronous batch execution,
    /// lane/pool introspection).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        self.session.config()
    }

    /// Admission-window capacity.
    pub fn queue_depth(&self) -> usize {
        self.admission.capacity()
    }

    /// Executions currently admitted and not yet complete.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// Counters of the compiled-program cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Offline pass through the program cache (see
    /// [`Session::compile_cached`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn compile_cached(&self, circuit: &Circuit) -> Result<Arc<CompiledProgram>, CompileError> {
        self.session.compile_cached(circuit)
    }

    /// Non-blocking admission: claims a window slot and dispatches the
    /// request to a lane, or refuses immediately when `queue_depth`
    /// executions are already in flight. The returned future resolves when
    /// the lane completes the job.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Busy`] when the admission window is full.
    pub fn try_submit(&self, request: ExecutionRequest) -> Result<JobFuture, SubmitError> {
        if !self.admission.try_acquire() {
            return Err(SubmitError::Busy { capacity: self.admission.capacity() });
        }
        Ok(self.dispatch_admitted(request, None))
    }

    /// Blocking admission: parks until a window slot frees, then dispatches
    /// like [`AsyncSession::try_submit`].
    pub fn submit(&self, request: ExecutionRequest) -> JobFuture {
        self.admission.acquire();
        self.dispatch_admitted(request, None)
    }

    /// [`AsyncSession::try_submit`] from a circuit: resolves the program
    /// through the content-addressed cache (compiling only on a miss),
    /// then admits the `(program, seed)` execution. The resulting report
    /// carries the cache counters observed at lookup time.
    ///
    /// Admission stays non-blocking, but the cache lookup is not free on a
    /// *miss* — the offline pass runs (and is retained) before the window
    /// check, so a later retry of a refused submission hits. Latency-bound
    /// callers can [`AsyncSession::compile_cached`] ahead of time and use
    /// [`AsyncSession::try_submit`].
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Busy`] when the admission window is full and
    /// [`SubmitError::Compile`] when the offline pass fails (nothing is
    /// admitted in either case).
    pub fn try_submit_circuit(
        &self,
        circuit: &Circuit,
        seed: u64,
    ) -> Result<JobFuture, SubmitError> {
        let (compiled, stats) = self.resolve(circuit)?;
        if !self.admission.try_acquire() {
            return Err(SubmitError::Busy { capacity: self.admission.capacity() });
        }
        Ok(self.dispatch_admitted(ExecutionRequest::new(compiled, seed), Some(stats)))
    }

    /// Blocking-admission twin of [`AsyncSession::try_submit_circuit`],
    /// with the offline failure surfaced as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn submit_circuit(&self, circuit: &Circuit, seed: u64) -> Result<JobFuture, CompileError> {
        let (compiled, stats) = self.resolve(circuit)?;
        self.admission.acquire();
        Ok(self.dispatch_admitted(ExecutionRequest::new(compiled, seed), Some(stats)))
    }

    /// Compile-once-sweep-many, async: one cache lookup, then one admitted
    /// execution per seed (parking whenever the window is full — with
    /// `queue_depth` below the sweep width this is the intended steady
    /// state: lanes drain the window while submission refills it). Futures
    /// are returned in seed order.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn sweep(&self, circuit: &Circuit, seeds: &[u64]) -> Result<Vec<JobFuture>, CompileError> {
        let (compiled, stats) = self.resolve(circuit)?;
        Ok(seeds
            .iter()
            .map(|&seed| {
                self.admission.acquire();
                self.dispatch_admitted(
                    ExecutionRequest::new(Arc::clone(&compiled), seed),
                    Some(stats),
                )
            })
            .collect())
    }

    /// Cache lookup plus the counter snapshot to stamp on the reports.
    fn resolve(
        &self,
        circuit: &Circuit,
    ) -> Result<(Arc<CompiledProgram>, CacheStats), CompileError> {
        let compiled = self.session.compile_cached(circuit)?;
        Ok((compiled, self.session.cache_stats()))
    }

    /// Dispatches an already-admitted request; the lane-side callback fills
    /// the future's slot (stamping cache telemetry when present) and
    /// releases the admission ticket. Release happens *before* the wake so
    /// a woken submitter never observes a stale full window.
    fn dispatch_admitted(
        &self,
        request: ExecutionRequest,
        stats: Option<CacheStats>,
    ) -> JobFuture {
        let slot = Arc::new(JobSlot::default());
        let lane_slot = Arc::clone(&slot);
        let admission = Arc::clone(&self.admission);
        let seed = request.seed;
        self.session.submit_with(
            request,
            Box::new(move |outcome| {
                let outcome = match (outcome, stats) {
                    (Ok(outcome), Some(stats)) => Ok(outcome.with_cache_stats(stats)),
                    (outcome, _) => outcome,
                };
                admission.release();
                lane_slot.complete(outcome);
            }),
        );
        JobFuture::new(slot, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::block_on;
    use oneperc_circuit::benchmarks;

    fn small_config(p: f64, seed: u64) -> CompilerConfig {
        CompilerConfig::for_sensitivity(36, 3, p, seed)
    }

    #[test]
    fn admission_window_counts_and_blocks() {
        let admission = Admission::new(2);
        assert_eq!(admission.capacity(), 2);
        assert!(admission.try_acquire());
        assert!(admission.try_acquire());
        assert_eq!(admission.in_flight(), 2);
        assert!(!admission.try_acquire(), "full window refuses");
        admission.release();
        assert!(admission.try_acquire(), "released slot is reusable");
        admission.release();
        admission.release();
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    fn blocking_acquire_waits_for_release() {
        let admission = Arc::new(Admission::new(1));
        admission.acquire();
        let contender = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || {
                admission.acquire(); // parks until the release below
                admission.release();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        admission.release();
        contender.join().expect("contender acquired after release");
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_queue_depth_panics() {
        let _ = AsyncSession::builder(small_config(0.9, 1)).queue_depth(0);
    }

    #[test]
    fn async_submission_resolves_like_sync_execution() {
        let config = small_config(0.85, 3);
        let service = AsyncSession::new(config);
        let circuit = benchmarks::qaoa(4, 2);
        let compiled = service.compile_cached(&circuit).unwrap();

        let future = service
            .try_submit(ExecutionRequest::new(Arc::clone(&compiled), 7))
            .expect("fresh window admits");
        let outcome = block_on(future);
        let sync = service.session().execute_shared(compiled, 7);
        assert_eq!(outcome.report().deterministic(), sync.report().deterministic());
        assert_eq!(service.in_flight(), 0, "completion released admission");
    }

    #[test]
    fn circuit_submissions_share_one_compile() {
        let service = AsyncSession::builder(small_config(0.85, 1)).lanes(2).build();
        let circuit = benchmarks::qaoa(4, 2);
        let futures: Vec<_> = (1..=6u64)
            .map(|seed| service.submit_circuit(&circuit, seed).unwrap())
            .collect();
        for future in futures {
            let outcome = block_on(future);
            assert!(outcome.is_complete());
            assert_eq!(outcome.report().cache.misses, 1, "one compile for the batch");
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 5);
    }

    #[test]
    fn futures_can_be_redeemed_in_any_order() {
        let service = AsyncSession::builder(small_config(0.85, 2)).lanes(2).build();
        let circuit = benchmarks::qft(4);
        let mut futures = service.sweep(&circuit, &[4, 5, 6]).unwrap();
        futures.reverse();
        let mut seeds: Vec<u64> = Vec::new();
        for future in futures {
            seeds.push(future.seed());
            assert!(block_on(future).is_complete());
        }
        assert_eq!(seeds, vec![6, 5, 4]);
    }

    #[test]
    fn dropping_a_future_does_not_wedge_the_window() {
        let service = AsyncSession::builder(small_config(0.85, 4)).queue_depth(1).build();
        let circuit = benchmarks::qaoa(4, 2);
        let compiled = service.compile_cached(&circuit).unwrap();
        drop(service.submit(ExecutionRequest::new(Arc::clone(&compiled), 1)));
        // The abandoned job still completes and releases its slot, so a
        // blocking submit admits without external help.
        let future = service.submit(ExecutionRequest::new(compiled, 2));
        assert!(block_on(future).is_complete());
    }

    #[test]
    fn mapping_failure_surfaces_through_submit_circuit() {
        // An over-wide circuit on a tiny virtual hardware cannot map; both
        // circuit-accepting entry points must report that as an error (the
        // RPC shape: untrusted circuits never panic the serving thread).
        let service = AsyncSession::new(CompilerConfig::for_sensitivity(36, 1, 0.85, 1));
        let wide = benchmarks::qft(9);
        let err = service.submit_circuit(&wide, 1);
        assert!(matches!(err, Err(CompileError::Mapping(_))));
        let err = service.try_submit_circuit(&wide, 1);
        assert!(matches!(err, Err(super::SubmitError::Compile(CompileError::Mapping(_)))));
        assert_eq!(service.in_flight(), 0, "failed compiles admit nothing");
    }
}
