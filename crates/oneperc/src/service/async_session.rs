//! [`AsyncSession`]: the runtime-agnostic async front-end over a warm
//! [`Session`].
//!
//! The synchronous session's `submit` is a channel handshake: the caller
//! eventually parks on a [`JobHandle`](crate::JobHandle) and lane queues
//! grow without bound. An embedding RPC server needs the opposite shape —
//! non-blocking admission with explicit backpressure, and completion as a
//! [`Future`](std::future::Future). `AsyncSession` provides both:
//!
//! * **Bounded admission.** At most `queue_depth` executions may be
//!   admitted-and-incomplete at once. [`AsyncSession::try_submit`] refuses
//!   with [`SubmitError::Busy`] when the window is full — the signal an RPC
//!   layer turns into load-shedding — while [`AsyncSession::submit`] parks
//!   until a slot frees and [`AsyncSession::submit_async`] returns an
//!   [`AdmissionFuture`] that *waits for the slot without parking*, so an
//!   executor thread multiplexing many tenants never blocks inside a
//!   submission. Admission is released by job *completion*, not by future
//!   redemption, so an abandoned future never wedges the window.
//! * **Futures, no runtime.** [`JobFuture`] is a plain
//!   `std::future::Future` wired through hand-rolled `Waker` plumbing: the
//!   lane thread completes a shared slot and wakes the registered waker.
//!   It works under any executor, under the built-in
//!   [`block_on`](super::block_on), or via the synchronous
//!   [`JobFuture::wait`].
//! * **Cancellation.** Every admitted job carries a
//!   [`CancelToken`](oneperc_percolation::CancelToken) polled by the lane
//!   at its layer checkpoints. **Dropping a [`JobFuture`] cancels its
//!   job** — the overload story: an RPC disconnect drops the future and
//!   the lane sheds the remaining layers instead of finishing work nobody
//!   will read. [`JobFuture::cancel`] sheds explicitly while keeping the
//!   future; the partial outcome reports
//!   [`LayerFailureReason::Cancelled`](crate::LayerFailureReason::Cancelled).
//! * **Content-addressed compilation.** The circuit-accepting entry points
//!   ([`AsyncSession::submit_circuit`], [`AsyncSession::sweep`]) resolve
//!   programs through the underlying session's
//!   [`ProgramCache`](super::ProgramCache) — shareable across a whole
//!   fleet via [`AsyncSessionBuilder::shared_program_cache`] — so a
//!   multi-seed sweep compiles exactly once and every report carries the
//!   lookup's own hit flag and counter snapshot, plus the scheduler's
//!   queue-depth / queue-wait stamp
//!   ([`ExecutionReport::service`](crate::ExecutionReport::service)).
//!
//! Determinism is unchanged by the front-end: per `(config, circuit,
//! seed)` an async execution's report is byte-identical (wall-clock and
//! cache/service telemetry aside — compare with
//! [`ExecutionReport::deterministic`](crate::ExecutionReport::deterministic))
//! to the synchronous [`Session::execute_batch`] path, whatever the
//! admission capacity or poll order. Cancellation never perturbs runs that
//! complete: the token is only ever *read* at checkpoints, so a run that
//! finishes first is untouched. `tests/service_determinism.rs` pins this.

use std::future::Future;
use std::pin::Pin;
use crate::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

use oneperc_circuit::Circuit;
use oneperc_percolation::CancelToken;

use crate::compiler::{CompileError, CompiledProgram};
use crate::config::CompilerConfig;
use crate::report::CacheStats;
use crate::service::cache::ProgramCache;
use crate::session::{ExecutionRequest, Session, SessionBuilder};

use super::future::{JobFuture, JobSlot, SubmitError};

/// Guts of the admission window: the slot count plus the wakers of async
/// submitters waiting for one.
#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    /// Wakers registered by pending [`AdmissionFuture`] polls. `release`
    /// wakes **all** of them: a woken future whose task was dropped would
    /// otherwise swallow the only wakeup and strand the rest; the losers
    /// of the re-poll race simply re-register. The window is shallow, so
    /// the thundering herd is a few wakes, not a scalability concern.
    waiters: Vec<Waker>,
}

/// Counting semaphore bounding admitted-and-incomplete executions.
///
/// Hand-rolled on `Mutex` + `Condvar` (std has no semaphore): acquire on
/// submission — blocking ([`Admission::acquire`]), non-blocking
/// ([`Admission::try_acquire`]) or asynchronously
/// ([`Admission::poll_acquire`], the engine of [`AdmissionFuture`]) — and
/// release from the lane-side completion callback.
#[derive(Debug)]
pub(crate) struct Admission {
    capacity: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

impl Admission {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission window needs at least one slot");
        Admission { capacity, state: Mutex::new(AdmissionState::default()), freed: Condvar::new() }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.state.lock().expect("admission window poisoned").in_flight
    }

    /// Claims a slot if one is free.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut state = self.state.lock().expect("admission window poisoned");
        if state.in_flight < self.capacity {
            state.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Parks until a slot frees, then claims it.
    pub(crate) fn acquire(&self) {
        let mut state = self.state.lock().expect("admission window poisoned");
        while state.in_flight >= self.capacity {
            state = self.freed.wait(state).expect("admission window poisoned");
        }
        state.in_flight += 1;
    }

    /// The async acquire: claims a slot if one is free, otherwise
    /// registers `cx`'s waker for the next release. Never parks the
    /// polling thread.
    pub(crate) fn poll_acquire(&self, cx: &mut Context<'_>) -> Poll<()> {
        let mut state = self.state.lock().expect("admission window poisoned");
        if state.in_flight < self.capacity {
            state.in_flight += 1;
            return Poll::Ready(());
        }
        // Keep one waker per task: replace nothing when the same task
        // re-polls, append otherwise (distinct futures wait concurrently).
        if !state.waiters.iter().any(|w| w.will_wake(cx.waker())) {
            state.waiters.push(cx.waker().clone());
        }
        Poll::Pending
    }

    /// Returns a slot, wakes one parked submitter and every registered
    /// async waiter (see [`AdmissionState::waiters`] for why all).
    pub(crate) fn release(&self) {
        let waiters = {
            let mut state = self.state.lock().expect("admission window poisoned");
            debug_assert!(state.in_flight > 0, "release without acquire");
            state.in_flight -= 1;
            std::mem::take(&mut state.waiters)
        };
        self.freed.notify_one();
        for waker in waiters {
            waker.wake();
        }
    }
}

/// Pending admission of one execution: resolves — to the job's
/// [`JobFuture`] — once the bounded window has a free slot, without ever
/// parking the polling thread. Produced by [`AsyncSession::submit_async`]
/// and [`AsyncSession::submit_circuit_async`].
///
/// The request is dispatched to a lane *inside* the poll that wins a
/// slot, so a dropped `AdmissionFuture` that never resolved holds
/// nothing: no slot, no queued work, nothing to cancel.
#[derive(Debug)]
#[must_use = "an admission future does nothing until polled; drop it to abandon the submission"]
pub struct AdmissionFuture<'a> {
    service: &'a AsyncSession,
    /// `Some` until the poll that wins a slot consumes it.
    request: Option<ExecutionRequest>,
    /// The `(hit, stats)` stamp of the lookup that produced the program,
    /// for circuit-accepting entry points.
    stamp: Option<(bool, CacheStats)>,
}

impl Future for AdmissionFuture<'_> {
    type Output = JobFuture;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.service.admission.poll_acquire(cx) {
            Poll::Ready(()) => {
                let request = this
                    .request
                    .take()
                    .expect("admission future polled after completion");
                Poll::Ready(this.service.dispatch_admitted(request, this.stamp))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Configures an [`AsyncSession`] before its threads spawn.
#[derive(Debug, Clone)]
#[must_use]
pub struct AsyncSessionBuilder {
    inner: SessionBuilder,
    queue_depth: usize,
}

/// Default admission-window depth: deep enough to keep a handful of lanes
/// busy with queued work, shallow enough that backpressure arrives before
/// queues hide seconds of latency.
pub const DEFAULT_QUEUE_DEPTH: usize = 16;

impl AsyncSessionBuilder {
    /// Number of persistent execution lanes of the underlying session.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.inner = self.inner.lanes(lanes);
        self
    }

    /// Capacity of the compiled-program cache (see
    /// [`SessionBuilder::program_cache`]).
    pub fn program_cache(mut self, capacity: usize) -> Self {
        self.inner = self.inner.program_cache(capacity);
        self
    }

    /// Shares an existing [`ProgramCache`] with the underlying session
    /// (see [`SessionBuilder::shared_program_cache`]): a fleet of sync and
    /// async sessions can serve every tenant from one content-addressed
    /// cache.
    pub fn shared_program_cache(mut self, cache: Arc<ProgramCache>) -> Self {
        self.inner = self.inner.shared_program_cache(cache);
        self
    }

    /// Overrides the classical-memory model of the underlying session.
    pub fn memory_model(mut self, model: crate::MemoryModel) -> Self {
        self.inner = self.inner.memory_model(model);
        self
    }

    /// Maximum admitted-and-incomplete executions before
    /// [`AsyncSession::try_submit`] answers [`SubmitError::Busy`]
    /// (default [`DEFAULT_QUEUE_DEPTH`]).
    ///
    /// # Panics
    ///
    /// Panics when `depth` is zero.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "admission window needs at least one slot");
        self.queue_depth = depth;
        self
    }

    /// Spawns the underlying session and wraps it in the async front-end.
    pub fn build(self) -> AsyncSession {
        AsyncSession {
            session: self.inner.build(),
            admission: Arc::new(Admission::new(self.queue_depth)),
        }
    }
}

/// The async front-end: a warm [`Session`] behind a bounded admission
/// window, speaking [`JobFuture`]s. See the [module docs](self) for the
/// architecture and determinism contract.
///
/// # Example
///
/// ```
/// use oneperc::service::{block_on, AsyncSession};
/// use oneperc::CompilerConfig;
/// use oneperc_circuit::benchmarks;
///
/// let service = AsyncSession::new(CompilerConfig::for_qubits(4, 0.9, 1));
/// let circuit = benchmarks::qaoa(4, 1);
/// // Compiles once (content-addressed), executes per seed.
/// let futures = service.sweep(&circuit, &[1, 2, 3]).unwrap();
/// for future in futures {
///     assert!(block_on(future).is_complete());
/// }
/// assert_eq!(service.cache_stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct AsyncSession {
    session: Session,
    admission: Arc<Admission>,
}

impl AsyncSession {
    /// Builds a single-lane async session with default depth and cache
    /// capacity (see [`AsyncSession::builder`] for the knobs).
    pub fn new(config: CompilerConfig) -> Self {
        Self::builder(config).build()
    }

    /// Starts configuring an async session.
    pub fn builder(config: CompilerConfig) -> AsyncSessionBuilder {
        AsyncSessionBuilder { inner: Session::builder(config), queue_depth: DEFAULT_QUEUE_DEPTH }
    }

    /// The warm session underneath (compile, synchronous batch execution,
    /// lane/pool introspection).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        self.session.config()
    }

    /// Admission-window capacity.
    pub fn queue_depth(&self) -> usize {
        self.admission.capacity()
    }

    /// Executions currently admitted and not yet complete.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// Counters of the compiled-program cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Offline pass through the program cache (see
    /// [`Session::compile_cached`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn compile_cached(&self, circuit: &Circuit) -> Result<Arc<CompiledProgram>, CompileError> {
        self.session.compile_cached(circuit)
    }

    /// Non-blocking admission: claims a window slot and dispatches the
    /// request to a lane, or refuses immediately when `queue_depth`
    /// executions are already in flight. The returned future resolves when
    /// the lane completes the job.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Busy`] when the admission window is full.
    pub fn try_submit(&self, request: ExecutionRequest) -> Result<JobFuture, SubmitError> {
        if !self.admission.try_acquire() {
            return Err(SubmitError::Busy { capacity: self.admission.capacity() });
        }
        Ok(self.dispatch_admitted(request, None))
    }

    /// Blocking admission: parks until a window slot frees, then dispatches
    /// like [`AsyncSession::try_submit`]. Under an executor prefer
    /// [`AsyncSession::submit_async`], which waits for the slot without
    /// parking the thread.
    pub fn submit(&self, request: ExecutionRequest) -> JobFuture {
        self.admission.acquire();
        self.dispatch_admitted(request, None)
    }

    /// Fully async admission: the returned [`AdmissionFuture`] resolves to
    /// the job's [`JobFuture`] once the window has a slot, registering a
    /// waker instead of parking — an executor thread driving hundreds of
    /// tenants never blocks inside a submission. Typical shape:
    /// `service.submit_async(request).await.await`.
    pub fn submit_async(&self, request: ExecutionRequest) -> AdmissionFuture<'_> {
        AdmissionFuture { service: self, request: Some(request), stamp: None }
    }

    /// [`AsyncSession::try_submit`] from a circuit: resolves the program
    /// through the content-addressed cache (compiling only on a miss),
    /// then admits the `(program, seed)` execution. The resulting report
    /// carries the lookup's own hit flag and counter snapshot.
    ///
    /// Admission stays non-blocking, but the cache lookup is not free on a
    /// *miss* — the offline pass runs (and is retained) before the window
    /// check, so a later retry of a refused submission hits. Latency-bound
    /// callers can [`AsyncSession::compile_cached`] ahead of time and use
    /// [`AsyncSession::try_submit`].
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Busy`] when the admission window is full and
    /// [`SubmitError::Compile`] when the offline pass fails (nothing is
    /// admitted in either case).
    pub fn try_submit_circuit(
        &self,
        circuit: &Circuit,
        seed: u64,
    ) -> Result<JobFuture, SubmitError> {
        let (compiled, stamp) = self.resolve(circuit)?;
        if !self.admission.try_acquire() {
            return Err(SubmitError::Busy { capacity: self.admission.capacity() });
        }
        Ok(self.dispatch_admitted(ExecutionRequest::new(compiled, seed), Some(stamp)))
    }

    /// Blocking-admission twin of [`AsyncSession::try_submit_circuit`],
    /// with the offline failure surfaced as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn submit_circuit(&self, circuit: &Circuit, seed: u64) -> Result<JobFuture, CompileError> {
        let (compiled, stamp) = self.resolve(circuit)?;
        self.admission.acquire();
        Ok(self.dispatch_admitted(ExecutionRequest::new(compiled, seed), Some(stamp)))
    }

    /// Async-admission twin of [`AsyncSession::submit_circuit`]: the cache
    /// lookup (and, on a miss, the offline pass) runs inline, then the
    /// returned [`AdmissionFuture`] waits for a window slot without
    /// parking.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails
    /// (nothing is admitted).
    pub fn submit_circuit_async(
        &self,
        circuit: &Circuit,
        seed: u64,
    ) -> Result<AdmissionFuture<'_>, CompileError> {
        let (compiled, stamp) = self.resolve(circuit)?;
        Ok(AdmissionFuture {
            service: self,
            request: Some(ExecutionRequest::new(compiled, seed)),
            stamp: Some(stamp),
        })
    }

    /// Compile-once-sweep-many, async: one cache lookup, then one admitted
    /// execution per seed (parking whenever the window is full — with
    /// `queue_depth` below the sweep width this is the intended steady
    /// state: lanes drain the window while submission refills it). Futures
    /// are returned in seed order; every report carries the sweep lookup's
    /// hit flag and atomic counter snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn sweep(&self, circuit: &Circuit, seeds: &[u64]) -> Result<Vec<JobFuture>, CompileError> {
        let (compiled, stamp) = self.resolve(circuit)?;
        Ok(seeds
            .iter()
            .map(|&seed| {
                self.admission.acquire();
                self.dispatch_admitted(
                    ExecutionRequest::new(Arc::clone(&compiled), seed),
                    Some(stamp),
                )
            })
            .collect())
    }

    /// Cache lookup plus this lookup's `(hit, stats)` stamp — the counter
    /// snapshot is taken atomically as the lookup resolves, so concurrent
    /// tenants (or the sweep's own later lookups) cannot smear the numbers
    /// stamped on a report.
    fn resolve(
        &self,
        circuit: &Circuit,
    ) -> Result<(Arc<CompiledProgram>, (bool, CacheStats)), CompileError> {
        let lookup = self.session.compile_cached_lookup(circuit)?;
        Ok((lookup.program, (lookup.hit, lookup.stats)))
    }

    /// Dispatches an already-admitted request; the lane-side callback fills
    /// the future's slot (stamping cache telemetry when present) and
    /// releases the admission ticket. Release happens *before* the wake so
    /// a woken submitter never observes a stale full window. The returned
    /// future owns the job's cancellation token — dropping it sheds the
    /// remaining layers.
    fn dispatch_admitted(
        &self,
        request: ExecutionRequest,
        stamp: Option<(bool, CacheStats)>,
    ) -> JobFuture {
        let slot = Arc::new(JobSlot::default());
        let lane_slot = Arc::clone(&slot);
        let admission = Arc::clone(&self.admission);
        let seed = request.seed;
        let cancel = CancelToken::new();
        self.session.submit_with(
            request,
            Box::new(move |outcome| {
                let outcome = match (outcome, stamp) {
                    (Ok(outcome), Some((hit, stats))) => {
                        Ok(outcome.with_cache_stamp(hit, stats))
                    }
                    (outcome, _) => outcome,
                };
                admission.release();
                lane_slot.complete(outcome);
            }),
            cancel.clone(),
        );
        JobFuture::new(slot, seed, cancel)
    }
}

/// Exhaustive interleaving checks for the admission semaphore (see
/// `CONCURRENCY.md`). Run with
/// `RUSTFLAGS="--cfg oneperc_model" cargo test -p oneperc model_`.
#[cfg(all(test, oneperc_model))]
mod model_tests {
    use super::Admission;
    use crate::sync::{thread, Arc};
    use std::task::{Context, Poll, Wake, Waker};

    /// Three threads funneling through a one-slot window with the
    /// blocking `acquire`: a lost `freed` notification (the classic
    /// missed-wakeup) would strand a waiter and surface as a deadlock.
    #[test]
    fn model_blocking_semaphore_has_no_lost_wakeups() {
        let report = oneperc_verify::model(|| {
            let admission = Arc::new(Admission::new(1));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let admission = Arc::clone(&admission);
                    thread::spawn(move || {
                        admission.acquire();
                        admission.release();
                    })
                })
                .collect();
            admission.acquire();
            admission.release();
            for worker in workers {
                worker.join().unwrap();
            }
            assert_eq!(admission.in_flight(), 0);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// The executor stand-in behind the async checks: wakes a parked
    /// model thread, exactly like the service's `block_on` waker.
    struct ParkWaker(thread::Thread);

    impl Wake for ParkWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Minimal poll loop over `poll_acquire`: poll, park while pending,
    /// re-poll on wake — the shape every executor reduces to.
    fn acquire_async(admission: &Admission) {
        let waker = Waker::from(Arc::new(ParkWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match admission.poll_acquire(&mut cx) {
                Poll::Ready(()) => return,
                Poll::Pending => thread::park(),
            }
        }
    }

    /// Two async waiters behind a held one-slot window: every `release`
    /// must wake **all** registered wakers (see `AdmissionState::waiters`)
    /// — waking only one would strand the loser of the re-poll race the
    /// next time around, and the model would report the deadlock.
    #[test]
    fn model_release_wakes_every_async_waiter() {
        let report = oneperc_verify::model(|| {
            let admission = Arc::new(Admission::new(1));
            admission.acquire(); // the root holds the only slot
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let admission = Arc::clone(&admission);
                    thread::spawn(move || {
                        acquire_async(&admission);
                        admission.release();
                    })
                })
                .collect();
            admission.release();
            for waiter in waiters {
                waiter.join().unwrap();
            }
            assert_eq!(admission.in_flight(), 0);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    /// The hazard `AdmissionState::waiters` documents: a waiter whose
    /// task is dropped right after registering. If it parked (slot was
    /// busy), a wakeup delivered to it is simply swallowed — it never
    /// re-polls. If it won a slot outright, it behaves like any admitted
    /// job and releases.
    fn poll_once_then_abandon(admission: &Admission) {
        let waker = Waker::from(Arc::new(ParkWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        match admission.poll_acquire(&mut cx) {
            Poll::Ready(()) => admission.release(),
            Poll::Pending => thread::park(), // woken — and abandons
        }
    }

    /// A registered waker whose task abandoned may be the one a release
    /// picks — so a release must wake **all** waiters, or the genuine
    /// waiter next to the abandoned one is stranded forever. Weakening
    /// `release` from `mem::take(&mut waiters)` to `waiters.pop()` makes
    /// this deadlock with a replayable trace.
    #[test]
    fn model_dropped_waiter_cannot_swallow_the_wakeup() {
        let report = oneperc_verify::model(|| {
            let admission = Arc::new(Admission::new(1));
            admission.acquire(); // the root holds the only slot
            let abandoner = {
                let admission = Arc::clone(&admission);
                thread::spawn(move || poll_once_then_abandon(&admission))
            };
            let waiter = {
                let admission = Arc::clone(&admission);
                thread::spawn(move || {
                    acquire_async(&admission);
                    admission.release();
                })
            };
            admission.release();
            abandoner.join().unwrap();
            waiter.join().unwrap();
            assert_eq!(admission.in_flight(), 0);
        });
        assert!(report.complete, "exploration must be exhaustive");
    }

    struct NoopWaker;

    impl Wake for NoopWaker {
        fn wake(self: Arc<Self>) {}
    }

    /// Concurrent single polls against one free slot admit at most one
    /// submitter — the "no double-dispatch" pin: a window that granted
    /// the same slot twice would dispatch two executions for it.
    #[test]
    fn model_concurrent_polls_never_overshoot_capacity() {
        let report = oneperc_verify::model(|| {
            let admission = Arc::new(Admission::new(1));
            let contenders: Vec<_> = (0..2)
                .map(|_| {
                    let admission = Arc::clone(&admission);
                    thread::spawn(move || {
                        let waker = Waker::from(Arc::new(NoopWaker));
                        let mut cx = Context::from_waker(&waker);
                        admission.poll_acquire(&mut cx).is_ready()
                    })
                })
                .collect();
            let admitted = contenders
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .filter(|&ready| ready)
                .count();
            assert!(admitted <= 1, "one slot admitted {admitted} submitters");
            assert_eq!(admission.in_flight(), admitted);
            for _ in 0..admitted {
                admission.release();
            }
        });
        assert!(report.complete, "exploration must be exhaustive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::block_on;
    use oneperc_circuit::benchmarks;

    fn small_config(p: f64, seed: u64) -> CompilerConfig {
        CompilerConfig::for_sensitivity(36, 3, p, seed)
    }

    #[test]
    fn admission_window_counts_and_blocks() {
        let admission = Admission::new(2);
        assert_eq!(admission.capacity(), 2);
        assert!(admission.try_acquire());
        assert!(admission.try_acquire());
        assert_eq!(admission.in_flight(), 2);
        assert!(!admission.try_acquire(), "full window refuses");
        admission.release();
        assert!(admission.try_acquire(), "released slot is reusable");
        admission.release();
        admission.release();
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    fn blocking_acquire_waits_for_release() {
        let admission = Arc::new(Admission::new(1));
        admission.acquire();
        let contender = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || {
                admission.acquire(); // parks until the release below
                admission.release();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        admission.release();
        contender.join().expect("contender acquired after release");
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_queue_depth_panics() {
        let _ = AsyncSession::builder(small_config(0.9, 1)).queue_depth(0);
    }

    #[test]
    fn async_submission_resolves_like_sync_execution() {
        let config = small_config(0.85, 3);
        let service = AsyncSession::new(config);
        let circuit = benchmarks::qaoa(4, 2);
        let compiled = service.compile_cached(&circuit).unwrap();

        let future = service
            .try_submit(ExecutionRequest::new(Arc::clone(&compiled), 7))
            .expect("fresh window admits");
        let outcome = block_on(future);
        let sync = service.session().execute_shared(compiled, 7);
        assert_eq!(outcome.report().deterministic(), sync.report().deterministic());
        assert_eq!(service.in_flight(), 0, "completion released admission");
    }

    #[test]
    fn circuit_submissions_share_one_compile() {
        let service = AsyncSession::builder(small_config(0.85, 1)).lanes(2).build();
        let circuit = benchmarks::qaoa(4, 2);
        let futures: Vec<_> = (1..=6u64)
            .map(|seed| service.submit_circuit(&circuit, seed).unwrap())
            .collect();
        for future in futures {
            let outcome = block_on(future);
            assert!(outcome.is_complete());
            assert_eq!(outcome.report().cache.misses, 1, "one compile for the batch");
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 5);
    }

    #[test]
    fn futures_can_be_redeemed_in_any_order() {
        let service = AsyncSession::builder(small_config(0.85, 2)).lanes(2).build();
        let circuit = benchmarks::qft(4);
        let mut futures = service.sweep(&circuit, &[4, 5, 6]).unwrap();
        futures.reverse();
        let mut seeds: Vec<u64> = Vec::new();
        for future in futures {
            seeds.push(future.seed());
            assert!(block_on(future).is_complete());
        }
        assert_eq!(seeds, vec![6, 5, 4]);
    }

    #[test]
    fn dropping_a_future_does_not_wedge_the_window() {
        let service = AsyncSession::builder(small_config(0.85, 4)).queue_depth(1).build();
        let circuit = benchmarks::qaoa(4, 2);
        let compiled = service.compile_cached(&circuit).unwrap();
        drop(service.submit(ExecutionRequest::new(Arc::clone(&compiled), 1)));
        // The abandoned job completes (cancelled at a checkpoint or run to
        // the end, timing-dependent) and releases its slot either way, so
        // a blocking submit admits without external help.
        let future = service.submit(ExecutionRequest::new(compiled, 2));
        assert!(block_on(future).is_complete());
    }

    #[test]
    fn submit_async_resolves_without_parking() {
        let config = small_config(0.85, 6);
        let service = AsyncSession::new(config);
        let circuit = benchmarks::qaoa(4, 2);
        let compiled = service.compile_cached(&circuit).unwrap();
        let outcome = block_on(async {
            let job = service.submit_async(ExecutionRequest::new(compiled, 9)).await;
            job.await
        });
        assert!(outcome.is_complete());
        let sync = service
            .session()
            .execute_shared(service.compile_cached(&circuit).unwrap(), 9);
        assert_eq!(outcome.report().deterministic(), sync.report().deterministic());
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    fn admission_future_waits_for_a_full_window_without_blocking() {
        use std::task::{Context, Poll, Wake, Waker};

        // A waker that records being woken, so the test can observe the
        // release → wake edge without threads.
        struct Flag(std::sync::atomic::AtomicBool);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }

        let admission = Admission::new(1);
        assert!(admission.try_acquire(), "window starts empty");

        let flag = Arc::new(Flag(std::sync::atomic::AtomicBool::new(false)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        assert_eq!(admission.poll_acquire(&mut cx), Poll::Pending, "full window parks nobody");
        assert!(!flag.0.load(std::sync::atomic::Ordering::SeqCst));

        admission.release();
        assert!(
            flag.0.load(std::sync::atomic::Ordering::SeqCst),
            "release wakes the registered async waiter"
        );
        assert_eq!(admission.poll_acquire(&mut cx), Poll::Ready(()), "re-poll wins the slot");
        admission.release();
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    fn submit_circuit_async_round_trips() {
        let service = AsyncSession::builder(small_config(0.85, 7)).queue_depth(2).build();
        let circuit = benchmarks::qft(4);
        let outcome = block_on(async {
            let job = service.submit_circuit_async(&circuit, 3).unwrap().await;
            job.await
        });
        assert!(outcome.is_complete());
        assert!(!outcome.report().service.cache_hit, "first lookup misses");
        let again = block_on(async {
            let job = service.submit_circuit_async(&circuit, 4).unwrap().await;
            job.await
        });
        assert!(again.report().service.cache_hit, "second lookup hits");
        assert_eq!(again.report().cache.misses, 1);
    }

    #[test]
    fn mapping_failure_surfaces_through_submit_circuit() {
        // An over-wide circuit on a tiny virtual hardware cannot map; both
        // circuit-accepting entry points must report that as an error (the
        // RPC shape: untrusted circuits never panic the serving thread).
        let service = AsyncSession::new(CompilerConfig::for_sensitivity(36, 1, 0.85, 1));
        let wide = benchmarks::qft(9);
        let err = service.submit_circuit(&wide, 1);
        assert!(matches!(err, Err(CompileError::Mapping(_))));
        let err = service.try_submit_circuit(&wide, 1);
        assert!(matches!(err, Err(super::SubmitError::Compile(CompileError::Mapping(_)))));
        assert_eq!(service.in_flight(), 0, "failed compiles admit nothing");
    }
}
