//! Long-lived compiler service sessions: warm pipelines, a shared
//! renormalization worker pool, and batched multi-seed execution.
//!
//! The one-shot [`Compiler`](crate::Compiler) facade rebuilds the whole
//! online execution context — reshaping engine, generator thread, worker
//! pool, scratch memory — on every `execute` call. A [`Session`] builds
//! that context **once** and multiplexes work through it:
//!
//! * Each of the session's **lanes** is a persistent worker thread owning a
//!   warm [`ReshapeEngine`]; between executions the engine is
//!   [`reset`](ReshapeEngine::reset) to the request's seed instead of being
//!   reconstructed, so the generator thread, the circulating layer buffers
//!   and the renormalization scratch all survive from one run to the next.
//! * With [`CompilerConfig::renorm_workers`] > 0 the session owns a single
//!   [`WorkerPool`] shared by every lane: each lane engine streams its
//!   layers through its own [`PoolClient`], and the pool multiplexes the
//!   interleaved jobs without ever mixing results between lanes.
//! * [`Session::execute_batch`] sweeps many seeds through the same compiled
//!   program — the bread-and-butter experiment shape of the paper's
//!   evaluation — and [`Session::submit`] exposes the underlying
//!   fire-and-collect job interface.
//!
//! Determinism is part of the API contract: for a fixed `(config, circuit,
//! seed)`, the report of a session execution is byte-identical (wall-clock
//! fields aside — compare with [`ExecutionReport::deterministic`]) to a
//! fresh one-shot `Compiler` run, whatever the lane count, worker count,
//! batch size or submission order. `tests/session_determinism.rs` pins
//! this.
//!
//! # Example
//!
//! ```
//! use oneperc::{CompilerConfig, Session};
//! use oneperc_circuit::benchmarks;
//!
//! let session = Session::new(CompilerConfig::for_qubits(4, 0.9, 1));
//! let compiled = session.compile(&benchmarks::qaoa(4, 1)).unwrap();
//! // Sweep three seeds through the warm pipeline.
//! let outcomes = session.execute_batch(&compiled, &[1, 2, 3]);
//! assert!(outcomes.iter().all(|o| o.is_complete()));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::mpsc::{channel, Receiver, Sender};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::Arc;
use std::time::Instant;

use oneperc_circuit::Circuit;
use oneperc_percolation::{panic_message, CancelToken, ReshapeEngine, WorkerPool};

use crate::compiler::{
    reshape_config, run_offline_pass, run_online_pass, CompileError, CompiledProgram,
};
use crate::config::CompilerConfig;
use crate::memory::MemoryModel;
use crate::report::{CacheStats, ExecuteOutcome, ExecutionReport, LayerFailureReason};
use crate::service::cache::{program_key, CacheLookup, ProgramCache};

/// One unit of work for a session: execute a compiled program with a seed.
///
/// The program travels as an [`Arc`] so a whole seed sweep shares one
/// allocation across lanes.
#[derive(Debug, Clone)]
pub struct ExecutionRequest {
    /// The compiled program to execute (must come from a configuration
    /// compatible with the session's, i.e. the same virtual hardware).
    pub compiled: Arc<CompiledProgram>,
    /// RNG seed of this execution's stochastic stream.
    pub seed: u64,
}

impl ExecutionRequest {
    /// Creates a request for one `(program, seed)` execution.
    pub fn new(compiled: Arc<CompiledProgram>, seed: u64) -> Self {
        ExecutionRequest { compiled, seed }
    }
}

/// A pending session execution; redeem it with [`JobHandle::wait`].
///
/// Dropping the handle **cancels** the job: the lane observes the token
/// at its next layer checkpoint and sheds the remaining work (an
/// already-finished job is unaffected). Call [`JobHandle::cancel`] to
/// shed work while keeping the handle — `wait` then returns the partial
/// outcome with [`LayerFailureReason::Cancelled`].
#[derive(Debug)]
#[must_use = "a dropped handle cancels its job at the next layer checkpoint"]
pub struct JobHandle {
    reply_rx: Receiver<Result<ExecuteOutcome, String>>,
    seed: u64,
    cancel: CancelToken,
}

impl JobHandle {
    /// The seed of the submitted request.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Requests cancellation: the lane stops the run at its next layer
    /// checkpoint instead of forming the remaining logical layers.
    /// Idempotent; a run that finished first is unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the job's cancellation token, for cancelling from
    /// elsewhere (a watchdog, another thread) without holding the handle.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the lane finishes the job and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics when this job's execution panicked (the lane's message is
    /// relayed; the lane itself survives with a fresh engine and keeps
    /// serving other jobs) or when the session was torn down with the job
    /// still pending.
    pub fn wait(self) -> ExecuteOutcome {
        match self.reply_rx.recv() {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(message)) => panic!("session execution panicked: {message}"),
            Err(_) => panic!("session torn down while a job was pending"),
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        // Shed the remaining work under overload: nobody can collect this
        // job's outcome any more. Cancelling after completion is a no-op.
        self.cancel.cancel();
    }
}

/// How a lane delivers a finished job: the synchronous handle path parks a
/// channel receiver, the async path runs a completion callback (which fills
/// a [`JobFuture`](crate::service::JobFuture) slot and releases its
/// admission ticket) right on the lane thread.
pub(crate) enum Completion {
    Channel(Sender<Result<ExecuteOutcome, String>>),
    Callback(Box<dyn FnOnce(Result<ExecuteOutcome, String>) + Send>),
}

impl Completion {
    fn deliver(self, outcome: Result<ExecuteOutcome, String>) {
        match self {
            // A dropped handle just means the caller lost interest.
            Completion::Channel(reply) => drop(reply.send(outcome)),
            Completion::Callback(callback) => callback(outcome),
        }
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Channel(_) => f.write_str("Completion::Channel"),
            Completion::Callback(_) => f.write_str("Completion::Callback"),
        }
    }
}

/// Message from the session facade to a lane thread.
struct LaneRequest {
    compiled: Arc<CompiledProgram>,
    seed: u64,
    completion: Completion,
    /// The submitter's cancellation token, polled at layer checkpoints.
    cancel: CancelToken,
    /// Jobs in flight (this one included) when the job was admitted.
    queue_depth: u64,
    /// When the job was submitted, for the queue-wait stamp.
    submitted_at: Instant,
}

/// Lifetime counters shared between the session facade and its lanes.
#[derive(Debug, Default)]
struct SessionCounters {
    /// Jobs whose completion has been delivered (panicked ones included).
    completed: AtomicU64,
    /// Jobs that stopped at a cancellation checkpoint.
    cancelled: AtomicU64,
}

/// One persistent execution lane: a worker thread owning a warm engine.
#[derive(Debug)]
struct Lane {
    /// `Option` so `Drop` can hang up before joining.
    request_tx: Option<Sender<LaneRequest>>,
    handle: Option<JoinHandle<()>>,
}

impl Lane {
    fn spawn(
        index: usize,
        config: CompilerConfig,
        memory_model: MemoryModel,
        pool: Option<Arc<WorkerPool>>,
        counters: Arc<SessionCounters>,
    ) -> Lane {
        let (request_tx, request_rx) = channel::<LaneRequest>();
        let handle = thread::Builder::new()
            .name(format!("oneperc-lane-{index}"))
            .spawn(move || {
                // The warm state of the lane: constructed once, reseeded
                // per request. With a shared pool the engine streams its
                // renormalization through the session-wide workers.
                let base = reshape_config(&config);
                let build_engine = || match &pool {
                    Some(pool) => ReshapeEngine::with_renorm_client(base, pool.client()),
                    None => ReshapeEngine::new(base),
                };
                let mut engine = build_engine();
                while let Ok(request) = request_rx.recv() {
                    let queue_wait = request.submitted_at.elapsed();
                    let run_config = config.with_seed(request.seed);
                    // A panicking execution must not take the lane (and
                    // with it every queued and future job on this lane)
                    // down: relay the panic to the one affected handle and
                    // rebuild the engine — its post-panic state (in-flight
                    // pool jobs included) is not worth salvaging, a fresh
                    // engine with a fresh pool client is.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        engine.reset(request.seed);
                        run_online_pass(
                            &mut engine,
                            &request.compiled,
                            &run_config,
                            &memory_model,
                            Some(&request.cancel),
                        )
                    }));
                    let reply = match outcome {
                        Ok(outcome) => {
                            if outcome.failure().map(|f| f.reason)
                                == Some(LayerFailureReason::Cancelled)
                            {
                                counters.cancelled.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(outcome.with_queue_telemetry(request.queue_depth, queue_wait))
                        }
                        Err(payload) => {
                            engine = build_engine();
                            Err(panic_message(payload))
                        }
                    };
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    request.completion.deliver(reply);
                }
            })
            .expect("spawn session lane thread");
        Lane { request_tx: Some(request_tx), handle: Some(handle) }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.request_tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Configures a [`Session`] before its threads spawn.
#[derive(Debug, Clone)]
#[must_use]
pub struct SessionBuilder {
    config: CompilerConfig,
    lanes: usize,
    memory_model: MemoryModel,
    program_cache: usize,
    shared_cache: Option<Arc<ProgramCache>>,
}

/// Default capacity of a session's compiled-program cache. Programs are a
/// few MiB at the evaluation's sizes, and a service rarely keeps more than
/// a handful of distinct `(circuit, config)` pairs hot at once.
pub const DEFAULT_PROGRAM_CACHE_CAPACITY: usize = 16;

impl SessionBuilder {
    /// Number of persistent execution lanes (warm engines). More lanes run
    /// more batch jobs concurrently; results never depend on the count.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "a session needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Overrides the classical-memory model used for the refresh-study
    /// memory estimate.
    pub fn memory_model(mut self, model: MemoryModel) -> Self {
        self.memory_model = model;
        self
    }

    /// Capacity of the content-addressed compiled-program cache serving
    /// [`Session::compile_cached`], [`Session::sweep`] and the async
    /// front-end (default [`DEFAULT_PROGRAM_CACHE_CAPACITY`]). `0` disables
    /// caching: every cached entry point compiles afresh.
    pub fn program_cache(mut self, capacity: usize) -> Self {
        self.program_cache = capacity;
        self
    }

    /// Shares an existing [`ProgramCache`] with this session instead of
    /// building a private one (overrides
    /// [`SessionBuilder::program_cache`]). Program keys are
    /// process-independent stable hashes of `(circuit structure, config
    /// fingerprint)`, so any number of sessions — sync and async alike —
    /// can serve from one cache: a circuit compiled by one tenant's
    /// session is a hit for every other, and concurrent misses of the
    /// same key single-flight across the whole fleet.
    pub fn shared_program_cache(mut self, cache: Arc<ProgramCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Spawns the session: the shared worker pool (when
    /// `config.renorm_workers > 0`) and one warm engine per lane.
    pub fn build(self) -> Session {
        let pool = if self.config.renorm_workers > 0 {
            Some(Arc::new(WorkerPool::new(self.config.renorm_workers)))
        } else {
            None
        };
        let counters = Arc::new(SessionCounters::default());
        let lanes = (0..self.lanes)
            .map(|index| {
                Lane::spawn(
                    index,
                    self.config,
                    self.memory_model,
                    pool.clone(),
                    Arc::clone(&counters),
                )
            })
            .collect();
        let cache = self
            .shared_cache
            .unwrap_or_else(|| Arc::new(ProgramCache::new(self.program_cache)));
        Session {
            config: self.config,
            memory_model: self.memory_model,
            cache,
            lanes,
            next_lane: AtomicUsize::new(0),
            jobs_submitted: AtomicU64::new(0),
            counters,
            pool,
        }
    }
}

/// A long-lived OnePerc compiler service session.
///
/// Owns the warm execution context — persistent lane threads with
/// reseedable [`ReshapeEngine`]s, their pipelined generator threads, and
/// (optionally) one shared renormalization [`WorkerPool`] — and multiplexes
/// compile/execute work through it. See the [module docs](self) for the
/// architecture and determinism contract, and [`SessionBuilder`] for
/// construction knobs.
///
/// Sessions are the primary entry point of the crate; the one-shot
/// [`Compiler`](crate::Compiler) shims remain for existing callers.
#[derive(Debug)]
pub struct Session {
    config: CompilerConfig,
    memory_model: MemoryModel,
    /// Content-addressed compiled-program cache behind the cached entry
    /// points ([`Session::compile_cached`], [`Session::sweep`], the async
    /// front-end). `Arc` so it can be
    /// [shared across sessions](SessionBuilder::shared_program_cache).
    cache: Arc<ProgramCache>,
    /// Declared before `pool`: lanes (and their pool clients) must wind
    /// down before the shared pool they submit to.
    lanes: Vec<Lane>,
    next_lane: AtomicUsize,
    jobs_submitted: AtomicU64,
    counters: Arc<SessionCounters>,
    pool: Option<Arc<WorkerPool>>,
}

/// The service alias: `OnePercService` is a [`Session`].
pub type OnePercService = Session;

impl Session {
    /// Builds a single-lane session for a configuration (see
    /// [`Session::builder`] for multi-lane setups).
    pub fn new(config: CompilerConfig) -> Self {
        Self::builder(config).build()
    }

    /// Starts configuring a session.
    pub fn builder(config: CompilerConfig) -> SessionBuilder {
        SessionBuilder {
            config,
            lanes: 1,
            memory_model: MemoryModel::default(),
            program_cache: DEFAULT_PROGRAM_CACHE_CAPACITY,
            shared_cache: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The classical-memory model in use.
    pub fn memory_model(&self) -> &MemoryModel {
        &self.memory_model
    }

    /// Number of persistent execution lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Workers of the shared renormalization pool (`None` when
    /// `renorm_workers` is 0 and renormalization runs in-lane).
    pub fn renorm_pool_workers(&self) -> Option<usize> {
        self.pool.as_deref().map(WorkerPool::worker_count)
    }

    /// Jobs submitted over the session's lifetime.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted.load(Ordering::Relaxed)
    }

    /// Jobs whose completion has been delivered (cancelled and panicked
    /// ones included).
    pub fn jobs_completed(&self) -> u64 {
        self.counters.completed.load(Ordering::Relaxed)
    }

    /// Jobs that stopped at a cancellation checkpoint (dropped handle /
    /// future, or an explicit `cancel()`) instead of running to the end.
    pub fn jobs_cancelled(&self) -> u64 {
        self.counters.cancelled.load(Ordering::Relaxed)
    }

    /// Offline pass: circuit → program graph state → FlexLattice IR →
    /// instructions. The output can be executed any number of times, with
    /// any seeds, by this session (or any session with the same
    /// configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the program cannot be mapped
    /// onto the configured virtual hardware.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        run_offline_pass(&self.config, circuit)
    }

    /// Enqueues one `(program, seed)` execution on the next lane
    /// (round-robin) and returns a handle to collect its outcome. This is
    /// the fire-and-collect primitive under [`Session::execute`] and
    /// [`Session::execute_batch`]; use it directly to overlap submission
    /// with other work or to interleave programs.
    pub fn submit(&self, request: ExecutionRequest) -> JobHandle {
        let (reply, reply_rx) = channel();
        let seed = request.seed;
        let cancel = CancelToken::new();
        self.dispatch(request, Completion::Channel(reply), cancel.clone());
        JobHandle { reply_rx, seed, cancel }
    }

    /// The callback twin of [`Session::submit`]: the lane runs `completion`
    /// (on the lane thread) when the job finishes instead of parking a
    /// channel. This is the dispatch primitive under the async front-end —
    /// the callback fills a `JobFuture` slot and releases its admission
    /// ticket. The caller owns `cancel` (a dropped `JobFuture` flips it).
    pub(crate) fn submit_with(
        &self,
        request: ExecutionRequest,
        completion: Box<dyn FnOnce(Result<ExecuteOutcome, String>) + Send>,
        cancel: CancelToken,
    ) {
        self.dispatch(request, Completion::Callback(completion), cancel);
    }

    /// The next round-robin lane. The stored counter is kept in
    /// `[0, lanes)` by `fetch_update`, so wrapping `usize::MAX` cannot
    /// skew the rotation for non-power-of-two lane counts the way the old
    /// `fetch_add(1) % lanes` did (two consecutive jobs on one lane at
    /// the wrap point).
    fn next_lane_index(&self) -> usize {
        let lanes = self.lanes.len();
        let previous = self
            .next_lane
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.wrapping_add(1) % lanes)
            })
            .expect("round-robin closure never declines");
        previous % lanes
    }

    fn dispatch(&self, request: ExecutionRequest, completion: Completion, cancel: CancelToken) {
        let lane_index = self.next_lane_index();
        let submitted = self.jobs_submitted.fetch_add(1, Ordering::Relaxed) + 1;
        // In-flight jobs including this one; `completed` can lag behind
        // other threads' deliveries, so clamp at 1 — a best-effort gauge,
        // not an accounting invariant.
        let queue_depth = submitted
            .saturating_sub(self.counters.completed.load(Ordering::Relaxed))
            .max(1);
        self.lanes[lane_index]
            .request_tx
            .as_ref()
            .expect("session is live")
            .send(LaneRequest {
                compiled: request.compiled,
                seed: request.seed,
                completion,
                cancel,
                queue_depth,
                submitted_at: Instant::now(),
            })
            .expect("session lane hung up");
    }

    /// Online pass on the warm session: executes a compiled program with
    /// the given seed and returns the typed outcome.
    ///
    /// Byte-identical (wall-clock aside) to a one-shot
    /// `Compiler::execute` with `config.with_seed(seed)`.
    ///
    /// This convenience clones the program into an [`Arc`] per call; when
    /// sweeping seeds one call at a time, hold the program in an `Arc`
    /// yourself and use [`Session::execute_shared`] (or
    /// [`Session::execute_batch`], which shares one clone across the whole
    /// sweep).
    pub fn execute(&self, compiled: &CompiledProgram, seed: u64) -> ExecuteOutcome {
        self.execute_shared(Arc::new(compiled.clone()), seed)
    }

    /// [`Session::execute`] without the per-call program clone.
    pub fn execute_shared(&self, compiled: Arc<CompiledProgram>, seed: u64) -> ExecuteOutcome {
        self.submit(ExecutionRequest::new(compiled, seed)).wait()
    }

    /// Executes a compiled program once with the session's configured seed.
    pub fn execute_report(&self, compiled: &CompiledProgram) -> ExecutionReport {
        self.execute(compiled, self.config.seed).into_report()
    }

    /// Runs a whole seed sweep through the warm pipelines: one execution
    /// per seed, distributed round-robin over the lanes, outcomes returned
    /// in seed order. The compiled program is shared (one `Arc`) across
    /// the batch.
    ///
    /// Per seed, the outcome is byte-identical (wall-clock aside) to a
    /// sequential run — regardless of batch size, lane count, worker count
    /// or completion order.
    pub fn execute_batch(&self, compiled: &CompiledProgram, seeds: &[u64]) -> Vec<ExecuteOutcome> {
        self.execute_batch_shared(Arc::new(compiled.clone()), seeds)
    }

    /// [`Session::execute_batch`] without the upfront program clone.
    pub fn execute_batch_shared(
        &self,
        compiled: Arc<CompiledProgram>,
        seeds: &[u64],
    ) -> Vec<ExecuteOutcome> {
        let handles: Vec<JobHandle> = seeds
            .iter()
            .map(|&seed| self.submit(ExecutionRequest::new(Arc::clone(&compiled), seed)))
            .collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }

    /// Offline pass through the session's content-addressed program cache:
    /// returns the cached artifact when this `(circuit, config)` pair — by
    /// [structural hash](oneperc_circuit::Circuit::structural_hash) and
    /// [fingerprint](CompilerConfig::fingerprint), seed excluded — was
    /// compiled before, and compiles (then retains, evicting LRU) on a
    /// miss. Concurrent lookups of the same key are single-flight: one
    /// compiles, the rest wait and share the result.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails
    /// (nothing is retained).
    pub fn compile_cached(&self, circuit: &Circuit) -> Result<Arc<CompiledProgram>, CompileError> {
        Ok(self.compile_cached_lookup(circuit)?.program)
    }

    /// [`Session::compile_cached`] with the lookup's own telemetry: whether
    /// it hit, and the counter snapshot taken atomically as it resolved —
    /// the stamp [`Session::sweep`] puts on reports.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails
    /// (nothing is retained).
    pub fn compile_cached_lookup(&self, circuit: &Circuit) -> Result<CacheLookup, CompileError> {
        let key = program_key(&self.config, circuit);
        self.cache.get_or_try_insert_with(key, || run_offline_pass(&self.config, circuit))
    }

    /// Counters of the compiled-program cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The compiled-program cache itself (capacity inspection, manual
    /// `clear`).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// A shareable handle to the compiled-program cache, for building
    /// further sessions over the same cache
    /// ([`SessionBuilder::shared_program_cache`]).
    pub fn program_cache_handle(&self) -> Arc<ProgramCache> {
        Arc::clone(&self.cache)
    }

    /// Compile-once-sweep-many in one call: resolves the circuit through
    /// the program cache ([`Session::compile_cached`]), runs one execution
    /// per seed through the warm lanes, and stamps every report with *this
    /// lookup's* counters ([`ExecutionReport::cache`](crate::ExecutionReport))
    /// and hit flag — the snapshot taken atomically as the lookup resolved,
    /// so concurrent tenants hammering the shared cache can't smear the
    /// numbers. Sweeping the same circuit again skips the offline pass
    /// entirely.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn sweep(
        &self,
        circuit: &Circuit,
        seeds: &[u64],
    ) -> Result<Vec<ExecuteOutcome>, CompileError> {
        let lookup = self.compile_cached_lookup(circuit)?;
        Ok(self
            .execute_batch_shared(lookup.program, seeds)
            .into_iter()
            .map(|outcome| outcome.with_cache_stamp(lookup.hit, lookup.stats))
            .collect())
    }

    /// Convenience: compile once, then sweep seeds through the result.
    ///
    /// Since the program cache landed this routes through
    /// [`Session::sweep`]; the spelling remains for existing callers.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn compile_and_sweep(
        &self,
        circuit: &Circuit,
        seeds: &[u64],
    ) -> Result<Vec<ExecuteOutcome>, CompileError> {
        self.sweep(circuit, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_circuit::benchmarks;

    fn small_config(p: f64, seed: u64) -> CompilerConfig {
        CompilerConfig::for_sensitivity(36, 3, p, seed)
    }

    #[test]
    fn session_executes_compiled_programs() {
        let session = Session::new(small_config(0.9, 2));
        let compiled = session.compile(&benchmarks::qaoa(4, 2)).unwrap();
        let outcome = session.execute(&compiled, 2);
        assert!(outcome.is_complete());
        let report = outcome.report();
        assert_eq!(report.logical_layers as usize, report.ir_layers);
        assert!(report.rsl_consumed > 0);
        assert_eq!(session.jobs_submitted(), 1);
    }

    #[test]
    fn warm_session_matches_one_shot_compiler() {
        let config = small_config(0.8, 7);
        let circuit = benchmarks::rca(4);
        let session = Session::new(config);
        let compiled = session.compile(&circuit).unwrap();
        for seed in [7u64, 8, 1_000_003] {
            let warm = session.execute(&compiled, seed).into_report().deterministic();
            #[allow(deprecated)]
            let cold = crate::Compiler::new(config.with_seed(seed))
                .compile_and_execute(&circuit)
                .unwrap()
                .deterministic();
            assert_eq!(warm, cold, "seed {seed}");
        }
    }

    #[test]
    fn batch_outcomes_follow_seed_order() {
        let config = small_config(0.85, 1);
        let session = Session::builder(config).lanes(3).build();
        let compiled = session.compile(&benchmarks::qft(4)).unwrap();
        let seeds = [5u64, 6, 7, 8, 9, 10];
        let batch = session.execute_batch(&compiled, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = session.execute(&compiled, seed);
            assert_eq!(
                batch[i].report().deterministic(),
                solo.report().deterministic(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn submit_interleaves_programs_and_seeds() {
        let config = small_config(0.85, 3);
        let session = Session::builder(config).lanes(2).build();
        let qaoa = Arc::new(session.compile(&benchmarks::qaoa(4, 3)).unwrap());
        let qft = Arc::new(session.compile(&benchmarks::qft(4)).unwrap());
        let handles = vec![
            session.submit(ExecutionRequest::new(Arc::clone(&qaoa), 11)),
            session.submit(ExecutionRequest::new(Arc::clone(&qft), 12)),
            session.submit(ExecutionRequest::new(Arc::clone(&qaoa), 13)),
            session.submit(ExecutionRequest::new(Arc::clone(&qft), 11)),
        ];
        assert_eq!(handles[0].seed(), 11);
        let outcomes: Vec<ExecuteOutcome> = handles.into_iter().map(JobHandle::wait).collect();
        assert!(outcomes.iter().all(ExecuteOutcome::is_complete));
        // Same program, same seed, different submission slot → same report.
        assert_eq!(
            outcomes[0].report().deterministic(),
            session.execute(&qaoa, 11).report().deterministic()
        );
        assert_eq!(session.jobs_submitted(), 5);
    }

    #[test]
    fn session_surfaces_layer_failures() {
        // An impossible target (virtual side == RSL side at p far below
        // what that needs) must report a typed failure, not just a bool.
        let hw_config = CompilerConfig::for_sensitivity(12, 12, 0.7, 5);
        let session = Session::new(hw_config);
        let compiled = session.compile(&benchmarks::qaoa(4, 1)).unwrap();
        let outcome = session.execute(&compiled, 5);
        assert!(!outcome.is_complete());
        let failure = outcome.failure().expect("incomplete outcome carries a failure");
        assert_eq!(failure.layer_index, 0);
        assert!(failure.merged_layers > 0);
        assert!(!outcome.report().complete);
        assert!(outcome.into_result().is_err());
    }

    #[test]
    fn lane_survives_a_panicking_execution() {
        // A memory model whose per-site cost overflows the peak-bytes
        // multiply makes every execution panic inside the lane in debug
        // builds (it wraps in release, where this test degenerates to a
        // smoke check). The contract under test: the panic is relayed
        // through the affected job's handle — and the lane thread
        // survives it, so later submissions on the same lane still get
        // answers instead of hanging or hitting a dead channel.
        let config = small_config(0.85, 1).with_renorm_workers(1);
        let session = Session::builder(config)
            .memory_model(MemoryModel::new(u64::MAX))
            .build();
        let compiled = session.compile(&benchmarks::qaoa(4, 2)).unwrap();
        for attempt in 0..3u64 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                session.execute(&compiled, attempt)
            }));
            if cfg!(debug_assertions) {
                let payload =
                    result.expect_err("overflow must panic in debug builds");
                let message = panic_message(payload);
                assert!(
                    message.contains("session execution panicked"),
                    "attempt {attempt}: panic must be relayed through the handle \
                     (lane alive), got: {message}"
                );
            } else {
                assert!(result.is_ok(), "attempt {attempt}");
            }
        }
        assert_eq!(session.jobs_submitted(), 3, "every attempt reached the lane");
    }

    #[test]
    fn round_robin_survives_index_wraparound() {
        // Regression (PR 7): `fetch_add(1) % lanes` assigns two
        // consecutive jobs to the same lane when the counter wraps with a
        // non-power-of-two lane count (…`usize::MAX % 3 == 0`, wrap,
        // `0 % 3 == 0`). The fetch_update rotation keeps the stored index
        // inside `[0, lanes)`, so the cycle stays clean through the wrap.
        let session = Session::builder(small_config(0.85, 1)).lanes(3).build();
        session.next_lane.store(usize::MAX, Ordering::Relaxed);
        let at_wrap = session.next_lane_index();
        assert!(at_wrap < 3);
        let after: Vec<usize> = (0..6).map(|_| session.next_lane_index()).collect();
        assert_eq!(after, vec![0, 1, 2, 0, 1, 2], "rotation is uniform across the wrap");
    }

    #[test]
    fn sessions_share_a_program_cache() {
        let config = small_config(0.85, 4);
        let circuit = benchmarks::qaoa(4, 2);
        let first = Session::new(config);
        let warmup = first.compile_cached_lookup(&circuit).unwrap();
        assert!(!warmup.hit);

        // A second session over the same cache hits immediately and shares
        // the very allocation the first session compiled.
        let second = Session::builder(config)
            .shared_program_cache(first.program_cache_handle())
            .build();
        let shared = second.compile_cached_lookup(&circuit).unwrap();
        assert!(shared.hit, "cross-session lookup is a hit");
        assert!(Arc::ptr_eq(&warmup.program, &shared.program));
        assert_eq!(second.cache_stats(), first.cache_stats());
        assert_eq!(shared.stats.hits, 1);
        assert_eq!(shared.stats.misses, 1);
    }

    #[test]
    fn explicit_cancel_stops_a_submitted_job() {
        let session = Session::new(small_config(0.85, 2));
        let compiled = Arc::new(session.compile(&benchmarks::qaoa(4, 2)).unwrap());
        let handle = session.submit(ExecutionRequest::new(Arc::clone(&compiled), 3));
        // Cancel before waiting: depending on timing the lane either
        // observed the flag at a checkpoint (Cancelled outcome) or had
        // already finished (complete outcome) — both are legal; what is
        // pinned is that `wait` returns and the lane stays serviceable.
        handle.cancel();
        let outcome = handle.wait();
        if let Some(failure) = outcome.failure() {
            assert_eq!(failure.reason, LayerFailureReason::Cancelled);
            assert_eq!(session.jobs_cancelled(), 1);
        }
        // The lane keeps serving, and an untouched token never perturbs a
        // run: byte-identical to the one-shot path.
        let fresh = session.execute_shared(compiled, 3);
        assert!(fresh.is_complete());
        assert_eq!(session.jobs_completed(), 2);
    }

    #[test]
    fn reports_carry_queue_telemetry() {
        let session = Session::new(small_config(0.85, 5));
        let compiled = session.compile(&benchmarks::qaoa(4, 2)).unwrap();
        let outcome = session.execute(&compiled, 5);
        let service = outcome.report().service;
        assert!(service.queue_depth >= 1, "an admitted job counts itself");
        assert!(!service.cache_hit, "explicit-program path never consults the cache");
        // And the deterministic view clears the stamp.
        assert_eq!(
            outcome.report().deterministic().service,
            crate::report::ServiceTelemetry::default()
        );
    }

    #[test]
    fn renorm_pool_is_shared_and_sized_by_config() {
        let session = Session::builder(small_config(0.85, 1).with_renorm_workers(2))
            .lanes(2)
            .build();
        assert_eq!(session.renorm_pool_workers(), Some(2));
        let compiled = session.compile(&benchmarks::qaoa(4, 2)).unwrap();
        let pooled = session.execute_batch(&compiled, &[3, 4]);
        let inline = Session::new(small_config(0.85, 1)).execute_batch(&compiled, &[3, 4]);
        for (a, b) in pooled.iter().zip(&inline) {
            assert_eq!(a.report().deterministic(), b.report().deterministic());
        }
    }
}
