//! Compiler configuration and the paper's benchmark presets (Table 1).

use oneperc_circuit::StableHasher;
use oneperc_hardware::HardwareConfig;
use oneperc_ir::VirtualHardware;
use oneperc_percolation::ModularConfig;

/// One row of the paper's Table 1: the hardware sizing used for a given
/// benchmark qubit count and fusion success probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preset {
    /// Number of circuit qubits of the benchmark.
    pub qubits: usize,
    /// Virtual-hardware side (the paper's "Virtual Hardware Size").
    pub virtual_side: usize,
    /// RSL side (the paper's "RSL Size").
    pub rsl_size: usize,
}

impl Preset {
    /// The presets of Table 1 for the hyper-advanced fusion success rate
    /// (p = 0.90).
    pub const P090: [Preset; 3] = [
        Preset { qubits: 4, virtual_side: 2, rsl_size: 24 },
        Preset { qubits: 9, virtual_side: 3, rsl_size: 36 },
        Preset { qubits: 25, virtual_side: 5, rsl_size: 60 },
    ];

    /// The presets of Table 1 for the practical fusion success rate
    /// (p = 0.75).
    pub const P075: [Preset; 4] = [
        Preset { qubits: 4, virtual_side: 2, rsl_size: 48 },
        Preset { qubits: 25, virtual_side: 5, rsl_size: 120 },
        Preset { qubits: 64, virtual_side: 8, rsl_size: 192 },
        Preset { qubits: 100, virtual_side: 10, rsl_size: 240 },
    ];

    /// Looks up (or synthesizes) the preset for a qubit count at a given
    /// fusion success probability. Qubit counts that do not appear in
    /// Table 1 get a virtual hardware of side `ceil(sqrt(qubits))` and an
    /// RSL sized by the same average node size as the table rows (12 sites
    /// per node at p = 0.90, 24 at p ≤ 0.75).
    pub fn for_qubits(qubits: usize, fusion_success_prob: f64) -> Preset {
        let table: &[Preset] = if fusion_success_prob >= 0.85 { &Self::P090 } else { &Self::P075 };
        if let Some(p) = table.iter().find(|p| p.qubits == qubits) {
            return *p;
        }
        let virtual_side = (qubits as f64).sqrt().ceil() as usize;
        let node_size = if fusion_success_prob >= 0.85 { 12 } else { 24 };
        Preset { qubits, virtual_side, rsl_size: virtual_side * node_size }
    }
}

/// Full configuration of a OnePerc compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerConfig {
    /// Photonic hardware model.
    pub hardware: HardwareConfig,
    /// Virtual-hardware side used by the offline mapping.
    pub virtual_side: usize,
    /// Average node size used by the 2D renormalization
    /// (`rsl_size / virtual_side` by construction).
    pub node_size: usize,
    /// Occupancy limit of incomplete nodes in the offline mapping.
    pub occupancy_limit: f64,
    /// Refresh period of the offline mapping, in layers (`None` = off).
    pub refresh_period: Option<usize>,
    /// Photons fused in parallel per time-like hop.
    pub temporal_redundancy: usize,
    /// RNG seed shared by the stochastic components.
    pub seed: u64,
    /// Run the online pass on the double-buffered RSL pipeline: layer
    /// generation overlaps renormalization on a dedicated thread. The
    /// execution report is byte-identical to the serial path per seed.
    pub pipelined: bool,
    /// Renormalization worker threads of the online pass (`0` = renormalize
    /// in-thread). With workers, the reshaping stage streams upcoming
    /// layers through a persistent [`WorkerPool`] — engine-private for the
    /// one-shot `Compiler` shims, shared across lanes in a
    /// [`Session`](crate::Session) — and consumes the lattices in stream
    /// order, so reports are byte-identical for every worker count; only
    /// the wall-clock changes. The same knob sizes modular-renormalization
    /// pools derived via [`CompilerConfig::modular`] (there `0` = one per
    /// available core, capped at one per module).
    ///
    /// [`WorkerPool`]: oneperc_percolation::WorkerPool
    pub renorm_workers: usize,
}

impl CompilerConfig {
    /// Builds a configuration directly from hardware parameters.
    ///
    /// # Panics
    ///
    /// Panics when the virtual hardware does not fit into the RSL.
    pub fn new(hardware: HardwareConfig, virtual_side: usize, seed: u64) -> Self {
        assert!(virtual_side > 0, "virtual hardware side must be positive");
        assert!(
            virtual_side <= hardware.rsl_size,
            "virtual hardware of side {virtual_side} cannot fit in an RSL of side {}",
            hardware.rsl_size
        );
        let node_size = hardware.rsl_size / virtual_side;
        CompilerConfig {
            hardware,
            virtual_side,
            node_size,
            occupancy_limit: 0.25,
            refresh_period: None,
            temporal_redundancy: 3,
            seed,
            pipelined: false,
            renorm_workers: 0,
        }
    }

    /// Builds the Table 1 configuration for a benchmark qubit count, using
    /// 4-qubit resource states as in the main experiment.
    pub fn for_qubits(qubits: usize, fusion_success_prob: f64, seed: u64) -> Self {
        let preset = Preset::for_qubits(qubits, fusion_success_prob);
        let hardware = HardwareConfig::new(preset.rsl_size, 4, fusion_success_prob);
        Self::new(hardware, preset.virtual_side, seed)
    }

    /// Builds the sensitivity-analysis configuration (7-qubit resource
    /// states) with an explicit RSL size and virtual side.
    pub fn for_sensitivity(
        rsl_size: usize,
        virtual_side: usize,
        fusion_success_prob: f64,
        seed: u64,
    ) -> Self {
        let hardware = HardwareConfig::new(rsl_size, 7, fusion_success_prob);
        Self::new(hardware, virtual_side, seed)
    }

    /// Overrides the resource-state size.
    #[must_use]
    pub fn with_resource_state_size(mut self, size: usize) -> Self {
        self.hardware.resource_state_size = size;
        self
    }

    /// Enables the refresh mechanism with the given period (in layers).
    #[must_use]
    pub fn with_refresh_period(mut self, period: Option<usize>) -> Self {
        self.refresh_period = period;
        self
    }

    /// Enables or disables the double-buffered RSL pipeline for the online
    /// pass.
    #[must_use]
    pub fn with_pipelining(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Sets the worker-pool size used by modular renormalizers derived
    /// from this configuration (`0` = auto).
    #[must_use]
    pub fn with_renorm_workers(mut self, workers: usize) -> Self {
        self.renorm_workers = workers;
        self
    }

    /// Overrides the RNG seed shared by the stochastic components. A
    /// session sweeping seeds applies this per execution request.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The virtual hardware implied by this configuration.
    pub fn virtual_hardware(&self) -> VirtualHardware {
        VirtualHardware::square(self.virtual_side)
    }

    /// A stable 64-bit fingerprint of every configuration knob **except the
    /// seed**: combined with
    /// [`Circuit::structural_hash`](oneperc_circuit::Circuit::structural_hash)
    /// it keys the service layer's content-addressed compiled-program
    /// cache.
    ///
    /// The seed is deliberately excluded — the offline pass is
    /// deterministic and seed-independent (only the online pass consumes
    /// randomness), so a multi-seed sweep over one circuit must address the
    /// *same* compiled artifact. Every other knob participates, including
    /// ones (like [`CompilerConfig::pipelined`]) that do not influence the
    /// offline output today: keying conservatively costs at most a
    /// recompile, while under-keying would silently serve a stale artifact
    /// if a knob ever grows offline-side effects.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        // Version tag of the fingerprint encoding, bumped on format change.
        h.write_tag(1);
        h.write_usize(self.hardware.rsl_size);
        h.write_usize(self.hardware.resource_state_size);
        h.write_f64(self.hardware.fusion_success_prob);
        h.write_f64(self.hardware.photon_loss_rate);
        h.write_usize(self.hardware.target_degree);
        h.write_usize(self.hardware.photon_lifetime_cycles);
        h.write_usize(self.virtual_side);
        h.write_usize(self.node_size);
        h.write_f64(self.occupancy_limit);
        match self.refresh_period {
            None => h.write_tag(0),
            Some(period) => {
                h.write_tag(1);
                h.write_usize(period);
            }
        }
        h.write_usize(self.temporal_redundancy);
        h.write_tag(u8::from(self.pipelined));
        h.write_usize(self.renorm_workers);
        h.finish()
    }

    /// The modular-renormalization configuration implied by this compiler
    /// configuration for `modules_per_side` modules at the given MI ratio:
    /// the node size comes from the RSL/virtual-hardware sizing and the
    /// worker pool from [`CompilerConfig::renorm_workers`].
    pub fn modular(&self, modules_per_side: usize, mi_ratio: usize) -> ModularConfig {
        ModularConfig::new(modules_per_side, mi_ratio, self.node_size)
            .with_workers(self.renorm_workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_resolve() {
        let p = Preset::for_qubits(25, 0.75);
        assert_eq!(p.virtual_side, 5);
        assert_eq!(p.rsl_size, 120);
        let p = Preset::for_qubits(9, 0.9);
        assert_eq!(p.virtual_side, 3);
        assert_eq!(p.rsl_size, 36);
    }

    #[test]
    fn synthesized_presets_scale_with_qubits() {
        let p = Preset::for_qubits(36, 0.75);
        assert_eq!(p.virtual_side, 6);
        assert_eq!(p.rsl_size, 6 * 24);
        let p = Preset::for_qubits(16, 0.9);
        assert_eq!(p.virtual_side, 4);
        assert_eq!(p.rsl_size, 48);
    }

    #[test]
    fn config_derives_node_size() {
        let cfg = CompilerConfig::for_qubits(4, 0.75, 1);
        assert_eq!(cfg.node_size, 24);
        assert_eq!(cfg.virtual_side, 2);
        assert_eq!(cfg.hardware.rsl_size, 48);
        assert_eq!(cfg.virtual_hardware().nodes_per_layer(), 4);
    }

    #[test]
    fn sensitivity_config_uses_seven_qubit_states() {
        let cfg = CompilerConfig::for_sensitivity(84, 7, 0.75, 0);
        assert_eq!(cfg.hardware.resource_state_size, 7);
        assert_eq!(cfg.node_size, 12);
        let resized = cfg.with_resource_state_size(5);
        assert_eq!(resized.hardware.resource_state_size, 5);
    }

    #[test]
    fn pipeline_knobs_thread_through_builders() {
        let cfg = CompilerConfig::for_qubits(4, 0.75, 1);
        assert!(!cfg.pipelined, "serial by default");
        assert_eq!(cfg.renorm_workers, 0, "auto-sized pool by default");
        let cfg = cfg.with_pipelining(true).with_renorm_workers(3);
        assert!(cfg.pipelined);
        assert_eq!(cfg.renorm_workers, 3);
    }

    #[test]
    fn modular_config_inherits_sizing_and_workers() {
        let cfg = CompilerConfig::for_sensitivity(84, 7, 0.75, 0).with_renorm_workers(2);
        let modular = cfg.modular(3, 7);
        assert_eq!(modular.modules_per_side, 3);
        assert_eq!(modular.mi_ratio, 7);
        assert_eq!(modular.node_size, cfg.node_size);
        assert_eq!(modular.workers, 2);
        assert!(modular.parallel);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_virtual_hardware_panics() {
        let hw = HardwareConfig::new(10, 4, 0.75);
        let _ = CompilerConfig::new(hw, 20, 0);
    }

    #[test]
    fn fingerprint_ignores_the_seed() {
        let base = CompilerConfig::for_sensitivity(36, 3, 0.8, 1);
        assert_eq!(base.fingerprint(), base.with_seed(999).fingerprint());
        assert_eq!(base.fingerprint(), base.fingerprint(), "fingerprint is stable");
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_knob() {
        let base = CompilerConfig::for_sensitivity(36, 3, 0.8, 1);
        let variants = [
            ("rsl_size", CompilerConfig::for_sensitivity(48, 3, 0.8, 1)),
            ("virtual_side", CompilerConfig::for_sensitivity(36, 4, 0.8, 1)),
            ("fusion_prob", CompilerConfig::for_sensitivity(36, 3, 0.75, 1)),
            ("resource_state", base.with_resource_state_size(4)),
            ("refresh", base.with_refresh_period(Some(5))),
            ("pipelined", base.with_pipelining(true)),
            ("renorm_workers", base.with_renorm_workers(2)),
            ("occupancy", {
                let mut c = base;
                c.occupancy_limit = 0.5;
                c
            }),
            ("temporal", {
                let mut c = base;
                c.temporal_redundancy = 5;
                c
            }),
            ("loss", {
                let mut c = base;
                c.hardware = c.hardware.with_photon_loss(0.01);
                c
            }),
            ("lifetime", {
                let mut c = base;
                c.hardware.photon_lifetime_cycles = 100;
                c
            }),
            ("target_degree", {
                let mut c = base;
                c.hardware = c.hardware.with_target_degree(4);
                c
            }),
        ];
        for (knob, variant) in variants {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "changing {knob} must change the fingerprint"
            );
        }
        // And the variants are pairwise distinct among themselves.
        for (i, (ka, a)) in variants.iter().enumerate() {
            for (kb, b) in variants.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{ka} vs {kb} collided");
            }
        }
    }

    #[test]
    fn refresh_period_none_and_zero_are_distinct() {
        let base = CompilerConfig::for_sensitivity(36, 3, 0.8, 1);
        assert_ne!(
            base.with_refresh_period(None).fingerprint(),
            base.with_refresh_period(Some(0)).fingerprint()
        );
    }
}
