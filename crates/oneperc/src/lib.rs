//! OnePerc: a randomness-aware compiler for photonic quantum computing.
//!
//! This crate is the top of the reproduction stack: it wires the offline
//! pass (circuit → program graph state → FlexLattice IR → instructions) to
//! the online pass (stochastic fusions → percolation → renormalization →
//! time-like connections) and reports the paper's metrics — `#RSL`,
//! `#fusion`, the PL ratio, and the classical-memory estimate behind the
//! refresh study.
//!
//! # Sessions: the primary entry point
//!
//! Photonic compilation is *repeated stochastic execution over a fixed
//! machine configuration*: the same compiled program is run across many
//! RNG seeds to characterize the hardware's randomness. [`Session`] (alias
//! [`OnePercService`]) is built for exactly that shape. It owns the warm
//! execution context — persistent lane threads with reseedable reshaping
//! engines, their pipelined generator threads, and a shared
//! renormalization [`WorkerPool`](oneperc_percolation::WorkerPool) sized
//! by [`CompilerConfig::renorm_workers`] — and multiplexes every execution
//! through it, so a seed sweep pays thread and allocation startup once
//! instead of per run.
//!
//! Quickstart — build a session, compile once, batch-execute a sweep:
//!
//! ```
//! use oneperc::{CompilerConfig, Session};
//! use oneperc_circuit::benchmarks;
//!
//! // One warm session per machine configuration.
//! let config = CompilerConfig::for_qubits(4, 0.9, 1);
//! let session = Session::new(config);
//!
//! // Offline pass runs once per circuit…
//! let circuit = benchmarks::qaoa(4, 1);
//! let compiled = session.compile(&circuit).unwrap();
//!
//! // …online pass runs once per seed, through the warm pipelines.
//! let outcomes = session.execute_batch(&compiled, &[1, 2, 3, 4]);
//! for outcome in &outcomes {
//!     let report = outcome.report();
//!     assert!(report.rsl_consumed > 0);
//!     assert!(report.logical_layers > 0);
//! }
//! ```
//!
//! Executions report a typed [`ExecuteOutcome`]: a complete run carries
//! its [`ExecutionReport`], an incomplete one additionally says *which*
//! logical layer failed to form and why ([`LayerFailure`]). Determinism is
//! contractual: per `(config, circuit, seed)` the metrics are
//! byte-identical whatever the lane count, `renorm_workers` setting, batch
//! size or submission order — `tests/session_determinism.rs` enforces it.
//!
//! # The service layer: async admission and content-addressed compilation
//!
//! On top of sessions, [`service`] adds what an embedding RPC server
//! needs. [`service::AsyncSession`] fronts a warm session with a bounded
//! admission window — [`try_submit`](service::AsyncSession::try_submit)
//! answers [`Busy`](service::SubmitError::Busy) instead of queueing
//! without limit — and returns [`service::JobFuture`]s: plain
//! `std::future::Future`s (hand-rolled `Waker` wiring, no runtime
//! dependency) consumable by any executor or the built-in
//! [`service::block_on`]. And because the offline pass is deterministic
//! per `(circuit, config)` while only the online pass consumes
//! randomness, every circuit-accepting entry point resolves programs
//! through a content-addressed [`service::ProgramCache`] — keyed by the
//! circuit's [structural hash](oneperc_circuit::Circuit::structural_hash)
//! plus the configuration's [fingerprint](CompilerConfig::fingerprint),
//! seed excluded — so a multi-seed sweep compiles **once**:
//!
//! ```
//! use oneperc::service::{block_on, AsyncSession};
//! use oneperc::CompilerConfig;
//! use oneperc_circuit::benchmarks;
//!
//! let service = AsyncSession::new(CompilerConfig::for_qubits(4, 0.9, 1));
//! let circuit = benchmarks::qaoa(4, 1);
//! let futures = service.sweep(&circuit, &[1, 2, 3, 4]).unwrap();
//! for future in futures {
//!     assert!(block_on(future).is_complete());
//! }
//! assert_eq!(service.cache_stats().misses, 1, "compiled exactly once");
//! ```
//!
//! The synchronous twin is [`Session::sweep`]; cache hit/miss/eviction
//! counters surface as [`CacheStats`] on the reports and through
//! [`Session::cache_stats`].
//!
//! # Multi-tenant fleets: shared cache, cancellation, telemetry
//!
//! One process can serve many tenants from many sessions sharing **one**
//! program cache — keys are process-independent stable hashes, so a
//! circuit compiled for any tenant is a cache hit for all of them, and
//! concurrent misses of the same key single-flight across the fleet
//! (distinct keys compile concurrently; the compile runs outside the
//! cache lock):
//!
//! ```
//! use oneperc::{CompilerConfig, Session};
//! use oneperc_circuit::benchmarks;
//!
//! let config = CompilerConfig::for_qubits(4, 0.9, 1);
//! let tenant_a = Session::new(config);
//! let tenant_b = Session::builder(config)
//!     .shared_program_cache(tenant_a.program_cache_handle())
//!     .build();
//!
//! tenant_a.compile_cached(&benchmarks::qaoa(4, 1)).unwrap(); // miss
//! let lookup = tenant_b.compile_cached_lookup(&benchmarks::qaoa(4, 1)).unwrap();
//! assert!(lookup.hit, "tenant A's compile served tenant B");
//! ```
//!
//! Under overload, work is **shed, not finished**: dropping a
//! [`JobHandle`] or [`service::JobFuture`] (or calling their `cancel`)
//! flips a [`CancelToken`](service::CancelToken) the lane polls between
//! logical layers; the run stops at the next checkpoint with
//! [`LayerFailureReason::Cancelled`]. Runs that complete are never
//! perturbed, so determinism contracts hold. Each service report also
//! carries per-tenant scheduling telemetry
//! ([`ExecutionReport::service`]): admission queue depth, queue wait, and
//! whether the program was a cache hit.
//!
//! For scaling beyond one process, shard sessions: one `Session` per
//! machine configuration, each with as many lanes as the host should
//! dedicate to that tenant — sessions of the *same* configuration can
//! still share a cache.
//!
//! Every synchronization primitive behind this tier (the admission
//! semaphore, the single-flight cache protocol, job futures, cancel
//! tokens, the renormalization worker pool) is model-checked: the
//! in-tree bounded model checker `oneperc-verify` exhaustively explores
//! their interleavings under `--cfg oneperc_model`, and
//! `cargo xtask lint-sync` keeps raw `std::sync` out of production code
//! so nothing synchronizes behind the checker's back. The catalogue of
//! primitives, the invariants, the model tests pinning each one, and how
//! to replay a failing schedule live in `CONCURRENCY.md` at the
//! workspace root.
//!
//! The one-shot [`Compiler`] facade remains as a deprecated-but-working
//! shim for existing callers; `Compiler::compile` (the offline pass) is
//! not deprecated and shares its implementation with [`Session::compile`].
//!
//! The experiment harness in `crates/bench` drives this API to regenerate
//! every table and figure of the paper's evaluation; the `examples/`
//! directory shows smaller end-to-end uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiler;
mod config;
mod memory;
mod report;
pub mod service;
mod session;
pub mod sync;

pub use compiler::{CompileError, CompiledProgram, Compiler};
pub use config::{CompilerConfig, Preset};
pub use memory::MemoryModel;
pub use report::{
    CacheStats, ExecuteOutcome, ExecutionReport, LayerFailure, LayerFailureReason,
    ServiceTelemetry,
};
pub use service::{AsyncSession, AsyncSessionBuilder, JobFuture, SubmitError};
pub use session::{
    ExecutionRequest, JobHandle, OnePercService, Session, SessionBuilder,
    DEFAULT_PROGRAM_CACHE_CAPACITY,
};
