//! OnePerc: a randomness-aware compiler for photonic quantum computing.
//!
//! This crate is the top of the reproduction stack: it wires the offline
//! pass (circuit → program graph state → FlexLattice IR → instructions) to
//! the online pass (stochastic fusions → percolation → renormalization →
//! time-like connections) and reports the paper's metrics — `#RSL`,
//! `#fusion`, the PL ratio, and the classical-memory estimate behind the
//! refresh study.
//!
//! # Sessions: the primary entry point
//!
//! Photonic compilation is *repeated stochastic execution over a fixed
//! machine configuration*: the same compiled program is run across many
//! RNG seeds to characterize the hardware's randomness. [`Session`] (alias
//! [`OnePercService`]) is built for exactly that shape. It owns the warm
//! execution context — persistent lane threads with reseedable reshaping
//! engines, their pipelined generator threads, and a shared
//! renormalization [`WorkerPool`](oneperc_percolation::WorkerPool) sized
//! by [`CompilerConfig::renorm_workers`] — and multiplexes every execution
//! through it, so a seed sweep pays thread and allocation startup once
//! instead of per run.
//!
//! Quickstart — build a session, compile once, batch-execute a sweep:
//!
//! ```
//! use oneperc::{CompilerConfig, Session};
//! use oneperc_circuit::benchmarks;
//!
//! // One warm session per machine configuration.
//! let config = CompilerConfig::for_qubits(4, 0.9, 1);
//! let session = Session::new(config);
//!
//! // Offline pass runs once per circuit…
//! let circuit = benchmarks::qaoa(4, 1);
//! let compiled = session.compile(&circuit).unwrap();
//!
//! // …online pass runs once per seed, through the warm pipelines.
//! let outcomes = session.execute_batch(&compiled, &[1, 2, 3, 4]);
//! for outcome in &outcomes {
//!     let report = outcome.report();
//!     assert!(report.rsl_consumed > 0);
//!     assert!(report.logical_layers > 0);
//! }
//! ```
//!
//! Executions report a typed [`ExecuteOutcome`]: a complete run carries
//! its [`ExecutionReport`], an incomplete one additionally says *which*
//! logical layer failed to form and why ([`LayerFailure`]). Determinism is
//! contractual: per `(config, circuit, seed)` the metrics are
//! byte-identical whatever the lane count, `renorm_workers` setting, batch
//! size or submission order — `tests/session_determinism.rs` enforces it.
//!
//! For scaling beyond one process, shard sessions: one `Session` per
//! machine configuration, each with as many lanes as the host should
//! dedicate to that tenant.
//!
//! The one-shot [`Compiler`] facade remains as a deprecated-but-working
//! shim for existing callers; `Compiler::compile` (the offline pass) is
//! not deprecated and shares its implementation with [`Session::compile`].
//!
//! The experiment harness in `crates/bench` drives this API to regenerate
//! every table and figure of the paper's evaluation; the `examples/`
//! directory shows smaller end-to-end uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiler;
mod config;
mod memory;
mod report;
mod session;

pub use compiler::{CompileError, CompiledProgram, Compiler};
pub use config::{CompilerConfig, Preset};
pub use memory::MemoryModel;
pub use report::{ExecuteOutcome, ExecutionReport, LayerFailure, LayerFailureReason};
pub use session::{ExecutionRequest, JobHandle, OnePercService, Session, SessionBuilder};
