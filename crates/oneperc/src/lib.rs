//! OnePerc: a randomness-aware compiler for photonic quantum computing.
//!
//! This crate is the top of the reproduction stack: it wires the offline
//! pass (circuit → program graph state → FlexLattice IR → instructions) to
//! the online pass (stochastic fusions → percolation → renormalization →
//! time-like connections) and reports the paper's metrics — `#RSL`,
//! `#fusion`, the PL ratio, and the classical-memory estimate behind the
//! refresh study.
//!
//! The main entry point is [`Compiler`]:
//!
//! ```
//! use oneperc::{Compiler, CompilerConfig};
//! use oneperc_circuit::benchmarks;
//!
//! let config = CompilerConfig::for_qubits(4, 0.9, 1);
//! let compiler = Compiler::new(config);
//! let circuit = benchmarks::qaoa(4, 1);
//! let compiled = compiler.compile(&circuit).unwrap();
//! let report = compiler.execute(&compiled);
//! assert!(report.rsl_consumed > 0);
//! assert!(report.logical_layers > 0);
//! ```
//!
//! The experiment harness in `crates/bench` drives this API to regenerate
//! every table and figure of the paper's evaluation; the `examples/`
//! directory shows smaller end-to-end uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiler;
mod config;
mod memory;
mod report;

pub use compiler::{CompileError, CompiledProgram, Compiler};
pub use config::{CompilerConfig, Preset};
pub use memory::MemoryModel;
pub use report::ExecutionReport;
