//! The end-to-end OnePerc compiler: offline pass + online execution.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use oneperc_circuit::{Circuit, ProgramGraph};
use oneperc_mapper::{MapError, Mapper, MapperConfig, MappingResult};
use oneperc_percolation::{LayerRequirement, ReshapeConfig, ReshapeEngine, TemporalRequirement};

use crate::config::CompilerConfig;
use crate::memory::MemoryModel;
use crate::report::ExecutionReport;

/// Errors of the end-to-end compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The offline mapping failed.
    Mapping(MapError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Mapping(e) => write!(f, "offline mapping failed: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Mapping(e)
    }
}

/// The output of the offline pass, ready for online execution.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The program graph state of the input circuit.
    pub program: ProgramGraph,
    /// The FlexLattice IR, instruction stream and mapping statistics.
    pub mapping: MappingResult,
    /// Wall-clock time of the offline pass.
    pub offline_time: std::time::Duration,
}

impl CompiledProgram {
    /// Number of virtual-hardware layers (logical layers the online pass
    /// must form).
    pub fn layer_count(&self) -> usize {
        self.mapping.ir.layer_count()
    }
}

/// The OnePerc compiler facade.
///
/// [`Compiler::compile`] runs the offline pass; [`Compiler::execute`]
/// simulates the online pass on the stochastic hardware model and reports
/// the evaluation metrics.
#[derive(Debug, Clone)]
pub struct Compiler {
    config: CompilerConfig,
    memory_model: MemoryModel,
}

impl Compiler {
    /// Creates a compiler.
    pub fn new(config: CompilerConfig) -> Self {
        Compiler { config, memory_model: MemoryModel::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Overrides the classical-memory model.
    pub fn with_memory_model(mut self, model: MemoryModel) -> Self {
        self.memory_model = model;
        self
    }

    /// Offline pass: circuit → program graph state → FlexLattice IR →
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the program cannot be mapped
    /// onto the configured virtual hardware.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        let start = Instant::now();
        let program = ProgramGraph::from_circuit(circuit);
        let mapper_config = MapperConfig::new(self.config.virtual_hardware())
            .with_occupancy_limit(self.config.occupancy_limit)
            .with_refresh_period(self.config.refresh_period);
        let mapping = Mapper::new(mapper_config).map(&program)?;
        Ok(CompiledProgram { program, mapping, offline_time: start.elapsed() })
    }

    /// Online pass: simulates the execution of a compiled program on the
    /// stochastic photonic hardware and reports `#RSL`, `#fusion` and the
    /// supporting metrics.
    pub fn execute(&self, compiled: &CompiledProgram) -> ExecutionReport {
        let start = Instant::now();
        let reshape_config = ReshapeConfig::new(
            self.config.hardware,
            self.config.node_size,
            self.config.virtual_side,
            self.config.seed,
        )
        .with_temporal_redundancy(self.config.temporal_redundancy)
        .with_pipelining(self.config.pipelined);
        let mut engine = ReshapeEngine::new(reshape_config);

        let mut complete = true;
        for summary in compiled.mapping.ir.layer_summaries() {
            let requirement = LayerRequirement {
                temporal_edges: summary
                    .incoming_temporal
                    .iter()
                    .map(|&(coord, gap)| TemporalRequirement { coord, back_distance: gap })
                    .collect(),
                stores: summary.stores,
                retrieves: summary.retrieves,
            };
            let report = engine.advance_logical_layer(&requirement);
            if !report.formed {
                complete = false;
                break;
            }
        }
        let online_time = start.elapsed();

        let stats = *engine.stats();
        // Memory: without refresh the real-time stage retains graph
        // information for every merged layer it has consumed; with refresh
        // only the layers of the current refresh window are retained.
        let retained_layers = match self.config.refresh_period {
            Some(period) => {
                let window = (period as f64 * stats.pl_ratio().max(1.0)).ceil() as u64;
                window.min(stats.merged_layers.max(1))
            }
            None => stats.merged_layers.max(1),
        };
        let peak_memory_bytes =
            self.memory_model.peak_bytes(self.config.hardware.rsl_size, retained_layers);

        ExecutionReport {
            rsl_consumed: stats.raw_rsl,
            merged_layers: stats.merged_layers,
            fusions: stats.fusions_attempted,
            logical_layers: stats.logical_layers,
            routing_layers: stats.routing_layers,
            ir_layers: compiled.layer_count(),
            program_nodes: compiled.mapping.stats.program_nodes,
            complete,
            pipelined: self.config.pipelined,
            peak_memory_bytes,
            offline_time: compiled.offline_time,
            online_time,
        }
    }

    /// Convenience: compile and execute in one call.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    pub fn compile_and_execute(&self, circuit: &Circuit) -> Result<ExecutionReport, CompileError> {
        let compiled = self.compile(circuit)?;
        Ok(self.execute(&compiled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use oneperc_circuit::benchmarks;

    fn small_compiler(p: f64, seed: u64) -> Compiler {
        // A deliberately small machine so tests stay fast: 36x36 RSL,
        // 3x3 virtual hardware, 7-qubit resource states.
        Compiler::new(CompilerConfig::for_sensitivity(36, 3, p, seed))
    }

    #[test]
    fn compile_produces_ir_layers() {
        let compiler = small_compiler(0.9, 1);
        let compiled = compiler.compile(&benchmarks::qaoa(4, 2)).unwrap();
        assert!(compiled.layer_count() > 0);
        assert!(compiled.mapping.complete);
        assert!(compiled.offline_time.as_nanos() > 0);
    }

    #[test]
    fn execute_reports_consistent_metrics() {
        let compiler = small_compiler(0.9, 2);
        let report = compiler.compile_and_execute(&benchmarks::qaoa(4, 2)).unwrap();
        assert!(report.complete);
        assert_eq!(report.logical_layers as usize, report.ir_layers);
        assert_eq!(
            report.merged_layers,
            report.logical_layers + report.routing_layers
        );
        assert!(report.rsl_consumed >= report.merged_layers);
        assert!(report.fusions > 0);
        assert!(report.pl_ratio() >= 1.0);
        assert!(report.peak_memory_bytes > 0);
    }

    #[test]
    fn lower_fusion_probability_costs_more_rsl() {
        let circuit = benchmarks::vqe(4, 3);
        let high = small_compiler(0.9, 3).compile_and_execute(&circuit).unwrap();
        let low = small_compiler(0.72, 3).compile_and_execute(&circuit).unwrap();
        assert!(
            low.rsl_consumed >= high.rsl_consumed,
            "lower fusion probability should consume at least as many RSLs ({} vs {})",
            low.rsl_consumed,
            high.rsl_consumed
        );
    }

    #[test]
    fn four_qubit_resource_states_multiply_raw_rsl() {
        let circuit = benchmarks::qaoa(4, 5);
        let seven = small_compiler(0.9, 4).compile_and_execute(&circuit).unwrap();
        let four = Compiler::new(
            CompilerConfig::for_sensitivity(36, 3, 0.9, 4).with_resource_state_size(4),
        )
        .compile_and_execute(&circuit)
        .unwrap();
        assert!(four.rsl_consumed > seven.rsl_consumed);
        assert_eq!(four.rsl_consumed, 3 * four.merged_layers);
        assert_eq!(seven.rsl_consumed, seven.merged_layers);
    }

    #[test]
    fn refresh_limits_memory_estimate() {
        let circuit = benchmarks::qft(4);
        let base = CompilerConfig::for_sensitivity(36, 3, 0.85, 9);
        let without = Compiler::new(base).compile_and_execute(&circuit).unwrap();
        let with = Compiler::new(base.with_refresh_period(Some(5)))
            .compile_and_execute(&circuit)
            .unwrap();
        assert!(with.peak_memory_bytes <= without.peak_memory_bytes);
        assert!(with.ir_layers >= without.ir_layers);
    }

    #[test]
    fn reports_are_reproducible_per_seed() {
        let circuit = benchmarks::rca(4);
        let a = small_compiler(0.8, 77).compile_and_execute(&circuit).unwrap();
        let b = small_compiler(0.8, 77).compile_and_execute(&circuit).unwrap();
        assert_eq!(a.rsl_consumed, b.rsl_consumed);
        assert_eq!(a.fusions, b.fusions);
    }

    #[test]
    fn pipelined_execution_matches_serial_metrics() {
        let circuit = benchmarks::qaoa(4, 8);
        let base = CompilerConfig::for_sensitivity(36, 3, 0.78, 41);
        let serial = Compiler::new(base).compile_and_execute(&circuit).unwrap();
        let piped = Compiler::new(base.with_pipelining(true))
            .compile_and_execute(&circuit)
            .unwrap();
        assert!(serial.complete && piped.complete);
        assert!(!serial.pipelined);
        assert!(piped.pipelined);
        // Every metric except the mode flag and wall-clock is identical.
        assert_eq!(serial.rsl_consumed, piped.rsl_consumed);
        assert_eq!(serial.merged_layers, piped.merged_layers);
        assert_eq!(serial.fusions, piped.fusions);
        assert_eq!(serial.logical_layers, piped.logical_layers);
        assert_eq!(serial.routing_layers, piped.routing_layers);
        assert_eq!(serial.peak_memory_bytes, piped.peak_memory_bytes);
    }
}
