//! The end-to-end OnePerc compiler: offline pass + online execution.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use oneperc_circuit::{Circuit, ProgramGraph};
use oneperc_mapper::{MapError, Mapper, MapperConfig, MappingResult};
use oneperc_percolation::{
    CancelToken, LayerRequirement, ReshapeConfig, ReshapeEngine, TemporalRequirement,
};

use crate::config::CompilerConfig;
use crate::memory::MemoryModel;
use crate::report::{
    CacheStats, ExecuteOutcome, ExecutionReport, LayerFailure, LayerFailureReason,
    ServiceTelemetry,
};

/// Errors of the end-to-end compilation.
///
/// Marked non-exhaustive: future online-error variants (delay-line
/// exhaustion, hardware backpressure, …) must not be breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The offline mapping failed.
    Mapping(MapError),
    /// The online pass gave up on a logical layer
    /// (see [`ExecuteOutcome::into_result`]).
    Incomplete(LayerFailure),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Mapping(e) => write!(f, "offline mapping failed: {e}"),
            CompileError::Incomplete(failure) => {
                write!(f, "online execution incomplete: {failure}")
            }
        }
    }
}

// The cause is inlined in `Display` (house style, like `MapError`), so
// `source()` stays `None` — chain-walking reporters would otherwise print
// the inner error twice.
impl Error for CompileError {}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Mapping(e)
    }
}

/// The output of the offline pass, ready for online execution.
#[derive(Debug, Clone)]
#[must_use]
pub struct CompiledProgram {
    /// The program graph state of the input circuit.
    pub program: ProgramGraph,
    /// The FlexLattice IR, instruction stream and mapping statistics.
    pub mapping: MappingResult,
    /// Wall-clock time of the offline pass.
    pub offline_time: std::time::Duration,
}

impl CompiledProgram {
    /// Number of virtual-hardware layers (logical layers the online pass
    /// must form).
    pub fn layer_count(&self) -> usize {
        self.mapping.ir.layer_count()
    }
}

/// Offline pass shared by [`Compiler::compile`] and
/// [`Session::compile`](crate::Session::compile): circuit → program graph
/// state → FlexLattice IR → instructions.
pub(crate) fn run_offline_pass(
    config: &CompilerConfig,
    circuit: &Circuit,
) -> Result<CompiledProgram, CompileError> {
    let start = Instant::now();
    let program = ProgramGraph::from_circuit(circuit);
    let mapper_config = MapperConfig::new(config.virtual_hardware())
        .with_occupancy_limit(config.occupancy_limit)
        .with_refresh_period(config.refresh_period);
    let mapping = Mapper::new(mapper_config).map(&program)?;
    Ok(CompiledProgram { program, mapping, offline_time: start.elapsed() })
}

/// The reshaping-engine configuration a compiler configuration implies.
pub(crate) fn reshape_config(config: &CompilerConfig) -> ReshapeConfig {
    ReshapeConfig::new(config.hardware, config.node_size, config.virtual_side, config.seed)
        .with_temporal_redundancy(config.temporal_redundancy)
        .with_pipelining(config.pipelined)
        .with_renorm_workers(config.renorm_workers)
}

/// Online pass shared by the deprecated one-shot [`Compiler::execute`] shim
/// and the warm [`Session`](crate::Session) lanes: drives `engine` through
/// every IR layer of `compiled` and derives the evaluation metrics.
///
/// The caller is responsible for `engine` being in its start-of-run state
/// (freshly constructed, or [`ReshapeEngine::reset`]) with the seed it
/// wants; every metric of the outcome is then a pure function of
/// `(config, compiled, seed)` — wall-clock fields aside — regardless of
/// engine reuse, worker counts or lane placement.
///
/// When `cancel` is provided, the engine checks it before consuming each
/// merged layer: a cancelled run stops at the next checkpoint and returns
/// [`ExecuteOutcome::Incomplete`] with
/// [`LayerFailureReason::Cancelled`]. Cancellation is strictly
/// cooperative — a run that finishes before the flag is observed is
/// byte-identical to an uncancellable one, which is what keeps every
/// determinism contract intact.
pub(crate) fn run_online_pass(
    engine: &mut ReshapeEngine,
    compiled: &CompiledProgram,
    config: &CompilerConfig,
    memory_model: &MemoryModel,
    cancel: Option<&CancelToken>,
) -> ExecuteOutcome {
    let start = Instant::now();
    let mut failure: Option<LayerFailure> = None;
    for (layer_index, summary) in compiled.mapping.ir.layer_summaries().into_iter().enumerate() {
        let requirement = LayerRequirement {
            temporal_edges: summary
                .incoming_temporal
                .iter()
                .map(|&(coord, gap)| TemporalRequirement { coord, back_distance: gap })
                .collect(),
            stores: summary.stores,
            retrieves: summary.retrieves,
        };
        let report = match cancel {
            Some(token) => engine.advance_logical_layer_cancellable(&requirement, token),
            None => engine.advance_logical_layer(&requirement),
        };
        if !report.formed {
            let reason = if report.cancelled {
                LayerFailureReason::Cancelled
            } else if report.timelike_failures > report.renorm_failures {
                LayerFailureReason::TimelikeStarved
            } else {
                LayerFailureReason::RenormalizationStarved
            };
            failure = Some(LayerFailure {
                layer_index,
                reason,
                merged_layers: report.merged_layers,
                renorm_failures: report.renorm_failures,
                timelike_failures: report.timelike_failures,
            });
            break;
        }
    }
    let online_time = start.elapsed();

    let stats = *engine.stats();
    // Memory: without refresh the real-time stage retains graph
    // information for every merged layer it has consumed; with refresh
    // only the layers of the current refresh window are retained. The
    // window is `refresh_period` logical layers' worth of merged layers,
    // computed in saturating integer arithmetic — a huge refresh period
    // must degrade to "retain everything", not overflow.
    let retained_layers = match config.refresh_period {
        Some(period) => {
            let period = period as u64;
            let window = if stats.logical_layers == 0 {
                period
            } else {
                // ceil(period · merged / logical) without f64 precision
                // loss; u128 keeps the product from wrapping.
                let scaled = (period as u128 * stats.merged_layers as u128)
                    .div_ceil(stats.logical_layers as u128);
                u64::try_from(scaled).unwrap_or(u64::MAX)
            };
            window.max(period).min(stats.merged_layers.max(1))
        }
        None => stats.merged_layers.max(1),
    };
    let peak_memory_bytes = memory_model.peak_bytes(config.hardware.rsl_size, retained_layers);

    let report = ExecutionReport {
        rsl_consumed: stats.raw_rsl,
        merged_layers: stats.merged_layers,
        fusions: stats.fusions_attempted,
        logical_layers: stats.logical_layers,
        routing_layers: stats.routing_layers,
        ir_layers: compiled.layer_count(),
        program_nodes: compiled.mapping.stats.program_nodes,
        complete: failure.is_none(),
        pipelined: config.pipelined,
        peak_memory_bytes,
        cache: CacheStats::default(),
        service: ServiceTelemetry::default(),
        offline_time: compiled.offline_time,
        online_time,
    };
    match failure {
        None => ExecuteOutcome::Complete(report),
        Some(failure) => ExecuteOutcome::Incomplete { report, failure },
    }
}

/// The one-shot OnePerc compiler facade.
///
/// [`Compiler::compile`] runs the offline pass; the deprecated
/// [`Compiler::execute`] simulates the online pass on the stochastic
/// hardware model, constructing (and discarding) the full execution context
/// — reshaping engine, generator thread, worker pool — on every call. New
/// code should keep a [`Session`](crate::Session) instead: it owns those
/// resources warm and multiplexes many seeded executions through them.
#[derive(Debug, Clone)]
pub struct Compiler {
    config: CompilerConfig,
    memory_model: MemoryModel,
}

impl Compiler {
    /// Creates a compiler.
    pub fn new(config: CompilerConfig) -> Self {
        Compiler { config, memory_model: MemoryModel::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Overrides the classical-memory model.
    pub fn with_memory_model(mut self, model: MemoryModel) -> Self {
        self.memory_model = model;
        self
    }

    /// Offline pass: circuit → program graph state → FlexLattice IR →
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the program cannot be mapped
    /// onto the configured virtual hardware.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        run_offline_pass(&self.config, circuit)
    }

    /// Online pass: simulates the execution of a compiled program on the
    /// stochastic photonic hardware and reports `#RSL`, `#fusion` and the
    /// supporting metrics.
    ///
    /// This is the **cold** path: every call constructs a fresh reshaping
    /// engine (plus generator thread and renormalization pool when
    /// configured) and tears it down again. A
    /// [`Session`](crate::Session) produces byte-identical reports while
    /// reusing all of that across calls.
    #[deprecated(
        since = "0.1.0",
        note = "build a `Session` and use `Session::execute` / `Session::execute_batch`; \
                this one-shot shim pays full engine and thread startup per call"
    )]
    pub fn execute(&self, compiled: &CompiledProgram) -> ExecutionReport {
        let mut engine = ReshapeEngine::new(reshape_config(&self.config));
        run_online_pass(&mut engine, compiled, &self.config, &self.memory_model, None)
            .into_report()
    }

    /// Convenience: compile and execute in one call.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Mapping`] when the offline pass fails.
    #[deprecated(
        since = "0.1.0",
        note = "build a `Session` and use `Session::compile` + `Session::execute`; \
                this one-shot shim pays full engine and thread startup per call"
    )]
    pub fn compile_and_execute(&self, circuit: &Circuit) -> Result<ExecutionReport, CompileError> {
        let compiled = self.compile(circuit)?;
        let mut engine = ReshapeEngine::new(reshape_config(&self.config));
        Ok(
            run_online_pass(&mut engine, &compiled, &self.config, &self.memory_model, None)
                .into_report(),
        )
    }
}

#[cfg(test)]
// The deprecated one-shot shims are exactly what this module tests: they
// must keep producing the same reports as always (and as the session).
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use oneperc_circuit::benchmarks;

    fn small_compiler(p: f64, seed: u64) -> Compiler {
        // A deliberately small machine so tests stay fast: 36x36 RSL,
        // 3x3 virtual hardware, 7-qubit resource states.
        Compiler::new(CompilerConfig::for_sensitivity(36, 3, p, seed))
    }

    #[test]
    fn compile_produces_ir_layers() {
        let compiler = small_compiler(0.9, 1);
        let compiled = compiler.compile(&benchmarks::qaoa(4, 2)).unwrap();
        assert!(compiled.layer_count() > 0);
        assert!(compiled.mapping.complete);
        assert!(compiled.offline_time.as_nanos() > 0);
    }

    #[test]
    fn execute_reports_consistent_metrics() {
        let compiler = small_compiler(0.9, 2);
        let report = compiler.compile_and_execute(&benchmarks::qaoa(4, 2)).unwrap();
        assert!(report.complete);
        assert_eq!(report.logical_layers as usize, report.ir_layers);
        assert_eq!(
            report.merged_layers,
            report.logical_layers + report.routing_layers
        );
        assert!(report.rsl_consumed >= report.merged_layers);
        assert!(report.fusions > 0);
        assert!(report.pl_ratio() >= 1.0);
        assert!(report.peak_memory_bytes > 0);
    }

    #[test]
    fn lower_fusion_probability_costs_more_rsl() {
        let circuit = benchmarks::vqe(4, 3);
        let high = small_compiler(0.9, 3).compile_and_execute(&circuit).unwrap();
        let low = small_compiler(0.72, 3).compile_and_execute(&circuit).unwrap();
        assert!(
            low.rsl_consumed >= high.rsl_consumed,
            "lower fusion probability should consume at least as many RSLs ({} vs {})",
            low.rsl_consumed,
            high.rsl_consumed
        );
    }

    #[test]
    fn four_qubit_resource_states_multiply_raw_rsl() {
        let circuit = benchmarks::qaoa(4, 5);
        let seven = small_compiler(0.9, 4).compile_and_execute(&circuit).unwrap();
        let four = Compiler::new(
            CompilerConfig::for_sensitivity(36, 3, 0.9, 4).with_resource_state_size(4),
        )
        .compile_and_execute(&circuit)
        .unwrap();
        assert!(four.rsl_consumed > seven.rsl_consumed);
        assert_eq!(four.rsl_consumed, 3 * four.merged_layers);
        assert_eq!(seven.rsl_consumed, seven.merged_layers);
    }

    #[test]
    fn refresh_limits_memory_estimate() {
        let circuit = benchmarks::qft(4);
        let base = CompilerConfig::for_sensitivity(36, 3, 0.85, 9);
        let without = Compiler::new(base).compile_and_execute(&circuit).unwrap();
        let with = Compiler::new(base.with_refresh_period(Some(5)))
            .compile_and_execute(&circuit)
            .unwrap();
        assert!(with.peak_memory_bytes <= without.peak_memory_bytes);
        assert!(with.ir_layers >= without.ir_layers);
    }

    #[test]
    fn huge_refresh_period_saturates_instead_of_overflowing() {
        // Regression: the retained-layers window used to be computed as
        // `(period as f64 * pl_ratio).ceil() as u64`, which loses precision
        // above 2^53 and silently saturates through the float cast. The
        // integer path must degrade to "retain every merged layer" — the
        // same estimate as running without refresh — for any period.
        let circuit = benchmarks::qft(4);
        let base = CompilerConfig::for_sensitivity(36, 3, 0.85, 9);
        let unrefreshed = Compiler::new(base).compile_and_execute(&circuit).unwrap();
        for period in [usize::MAX, usize::MAX / 2, u64::MAX as usize] {
            let huge = Compiler::new(base.with_refresh_period(Some(period)))
                .compile_and_execute(&circuit)
                .unwrap();
            assert_eq!(
                huge.peak_memory_bytes, unrefreshed.peak_memory_bytes,
                "period {period}: a window larger than the run retains everything"
            );
        }
        // And a sane period still shrinks the estimate.
        let small = Compiler::new(base.with_refresh_period(Some(5)))
            .compile_and_execute(&circuit)
            .unwrap();
        assert!(small.peak_memory_bytes <= unrefreshed.peak_memory_bytes);
    }

    #[test]
    fn incomplete_execution_reports_failed_layer() {
        // Virtual side == RSL side cannot renormalize: the safety cap hits
        // on the very first logical layer and the outcome must say so.
        let config = CompilerConfig::for_sensitivity(12, 12, 0.7, 5);
        let compiler = Compiler::new(config);
        let compiled = compiler.compile(&benchmarks::qaoa(4, 1)).unwrap();
        let mut engine = ReshapeEngine::new(reshape_config(&config));
        let outcome =
            run_online_pass(&mut engine, &compiled, &config, &MemoryModel::default(), None);
        assert!(!outcome.is_complete());
        let failure = outcome.failure().unwrap();
        assert_eq!(failure.layer_index, 0);
        assert_eq!(failure.merged_layers, failure.renorm_failures + failure.timelike_failures);
        assert_eq!(
            failure.reason,
            crate::report::LayerFailureReason::RenormalizationStarved
        );
        // The deprecated shim flattens the same information into the bool.
        let report = compiler.execute(&compiled);
        assert!(!report.complete);
    }

    #[test]
    fn cancelled_token_stops_the_online_pass() {
        let config = CompilerConfig::for_sensitivity(36, 3, 0.9, 6);
        let compiler = Compiler::new(config);
        let compiled = compiler.compile(&benchmarks::qaoa(4, 2)).unwrap();

        // Pre-cancelled: the run stops before consuming a single merged
        // layer and says why.
        let token = CancelToken::new();
        token.cancel();
        let mut engine = ReshapeEngine::new(reshape_config(&config));
        let outcome = run_online_pass(
            &mut engine,
            &compiled,
            &config,
            &MemoryModel::default(),
            Some(&token),
        );
        assert!(!outcome.is_complete());
        let failure = outcome.failure().unwrap();
        assert_eq!(failure.reason, LayerFailureReason::Cancelled);
        assert_eq!(failure.layer_index, 0);
        assert_eq!(outcome.report().merged_layers, 0);

        // A live token never perturbs the run: byte-identical to the
        // uncancellable path.
        let live = CancelToken::new();
        let mut with_token_engine = ReshapeEngine::new(reshape_config(&config));
        let with_token = run_online_pass(
            &mut with_token_engine,
            &compiled,
            &config,
            &MemoryModel::default(),
            Some(&live),
        );
        let mut plain_engine = ReshapeEngine::new(reshape_config(&config));
        let plain = run_online_pass(
            &mut plain_engine,
            &compiled,
            &config,
            &MemoryModel::default(),
            None,
        );
        assert_eq!(
            with_token.report().deterministic(),
            plain.report().deterministic()
        );
        assert!(with_token.is_complete());
    }

    #[test]
    fn reports_are_reproducible_per_seed() {
        let circuit = benchmarks::rca(4);
        let a = small_compiler(0.8, 77).compile_and_execute(&circuit).unwrap();
        let b = small_compiler(0.8, 77).compile_and_execute(&circuit).unwrap();
        assert_eq!(a.rsl_consumed, b.rsl_consumed);
        assert_eq!(a.fusions, b.fusions);
    }

    #[test]
    fn pipelined_execution_matches_serial_metrics() {
        let circuit = benchmarks::qaoa(4, 8);
        let base = CompilerConfig::for_sensitivity(36, 3, 0.78, 41);
        let serial = Compiler::new(base).compile_and_execute(&circuit).unwrap();
        let piped = Compiler::new(base.with_pipelining(true))
            .compile_and_execute(&circuit)
            .unwrap();
        assert!(serial.complete && piped.complete);
        assert!(!serial.pipelined);
        assert!(piped.pipelined);
        // Every metric except the mode flag and wall-clock is identical.
        assert_eq!(serial.rsl_consumed, piped.rsl_consumed);
        assert_eq!(serial.merged_layers, piped.merged_layers);
        assert_eq!(serial.fusions, piped.fusions);
        assert_eq!(serial.logical_layers, piped.logical_layers);
        assert_eq!(serial.routing_layers, piped.routing_layers);
        assert_eq!(serial.peak_memory_bytes, piped.peak_memory_bytes);
    }
}
