//! Classical-memory model for the refresh study (Table 3).
//!
//! The real-time stage must keep classical graph information for every
//! physical qubit whose fate is not yet decided: the sites of the RSLs that
//! are still reachable through stored photons and routing layers. The
//! paper's reference implementation keeps roughly half a kilobyte of Python
//! object overhead per site, which is what makes the 64-qubit benchmarks
//! consume ~192 GB without refresh. The refresh mechanism bounds the number
//! of retained layers to one refresh window.

/// Estimates classical memory consumption of the real-time stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Bytes of graph bookkeeping per physical lattice site.
    pub bytes_per_site: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel { bytes_per_site: Self::DEFAULT_BYTES_PER_SITE }
    }
}

impl MemoryModel {
    /// Default per-site cost, calibrated against the paper's reported RAM
    /// footprints (≈ 192 GB for the 64-qubit benchmarks without refresh).
    pub const DEFAULT_BYTES_PER_SITE: u64 = 512;

    /// Creates a model with an explicit per-site cost.
    pub fn new(bytes_per_site: u64) -> Self {
        MemoryModel { bytes_per_site }
    }

    /// Peak memory (bytes) when graph information for `retained_layers`
    /// merged layers of an `rsl_size × rsl_size` machine must be kept at
    /// once.
    pub fn peak_bytes(&self, rsl_size: usize, retained_layers: u64) -> u64 {
        (rsl_size as u64) * (rsl_size as u64) * retained_layers * self.bytes_per_site
    }

    /// Peak memory in gibibytes.
    pub fn peak_gib(&self, rsl_size: usize, retained_layers: u64) -> f64 {
        self.peak_bytes(rsl_size, retained_layers) as f64 / (1u64 << 30) as f64
    }

    /// Returns `true` when the estimated peak fits within a RAM budget given
    /// in gibibytes.
    pub fn fits(&self, rsl_size: usize, retained_layers: u64, budget_gib: f64) -> bool {
        self.peak_gib(rsl_size, retained_layers) <= budget_gib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_footprints() {
        let model = MemoryModel::default();
        // 64-qubit benchmarks: 192x192 RSL, ~10 000 merged layers without
        // refresh lands in the hundred-GB range.
        let no_refresh = model.peak_gib(192, 10_000);
        assert!(no_refresh > 100.0, "expected >100 GiB, got {no_refresh}");
        // 25-qubit benchmarks without refresh stay within 32 GB.
        let small = model.peak_gib(120, 3_000);
        assert!(small < 32.0, "expected <32 GiB, got {small}");
        // 100-qubit benchmarks with a 50-layer refresh window fit in 32 GB.
        let refreshed = model.peak_gib(240, 150);
        assert!(refreshed < 32.0, "expected <32 GiB, got {refreshed}");
    }

    #[test]
    fn fits_matches_threshold() {
        let model = MemoryModel::new(1024);
        assert!(model.fits(100, 10, 1.0));
        assert!(!model.fits(1000, 10_000, 1.0));
        assert_eq!(model.peak_bytes(10, 2), 100 * 2 * 1024);
    }
}
