//! Execution metrics: the paper's `#RSL` and `#fusion`, plus supporting
//! statistics.

use std::fmt;
use std::time::Duration;

/// The metrics of one end-to-end compilation + execution, aligned with the
/// columns of Table 2 and the series of the analysis figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use]
pub struct ExecutionReport {
    /// Raw resource-state layers consumed — the paper's `#RSL`.
    pub rsl_consumed: u64,
    /// Merged layers consumed (equals `#RSL` divided by the merging factor).
    pub merged_layers: u64,
    /// Fusions attempted — the paper's `#fusion`.
    pub fusions: u64,
    /// Logical layers formed by the online pass (equals the layers of the IR
    /// program when execution completes).
    pub logical_layers: u64,
    /// Routing layers consumed along the way.
    pub routing_layers: u64,
    /// Virtual-hardware layers requested by the offline pass.
    pub ir_layers: usize,
    /// Program-graph nodes mapped by the offline pass.
    pub program_nodes: usize,
    /// Whether every requested logical layer was formed within the safety
    /// caps.
    pub complete: bool,
    /// Whether the online pass ran on the double-buffered RSL pipeline
    /// (the metrics are byte-identical either way for a fixed seed; only
    /// the wall-clock differs).
    pub pipelined: bool,
    /// Peak classical-memory estimate in bytes for the real-time stage.
    pub peak_memory_bytes: u64,
    /// Wall-clock time spent in the offline pass.
    pub offline_time: Duration,
    /// Wall-clock time spent simulating the online pass.
    pub online_time: Duration,
}

impl ExecutionReport {
    /// The PL ratio: merged layers consumed per logical layer (Fig. 13(b)).
    pub fn pl_ratio(&self) -> f64 {
        if self.logical_layers == 0 {
            0.0
        } else {
            self.merged_layers as f64 / self.logical_layers as f64
        }
    }

    /// Peak classical memory in gibibytes.
    pub fn peak_memory_gib(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1u64 << 30) as f64
    }

    /// Average online processing time per merged layer (Fig. 14).
    pub fn online_seconds_per_layer(&self) -> f64 {
        if self.merged_layers == 0 {
            0.0
        } else {
            self.online_time.as_secs_f64() / self.merged_layers as f64
        }
    }

    /// The report with its wall-clock fields zeroed: every remaining field
    /// is a pure function of the configuration and seed, so two runs of the
    /// same `(config, circuit, seed)` must produce equal deterministic
    /// views whatever machine, session or batch they ran in. This is the
    /// comparison form used by the batch-determinism suite.
    pub fn deterministic(mut self) -> ExecutionReport {
        self.offline_time = Duration::ZERO;
        self.online_time = Duration::ZERO;
        self
    }
}

/// Why a logical layer could not be formed within the safety cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerFailureReason {
    /// Most attempts never renormalized to the target lattice — the RSL is
    /// too small or the fusion probability too close to the percolation
    /// threshold for this virtual-hardware size.
    RenormalizationStarved,
    /// Renormalization mostly succeeded but the requested time-like
    /// connections kept failing — temporal redundancy or photon lifetime is
    /// the binding constraint.
    TimelikeStarved,
}

impl fmt::Display for LayerFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerFailureReason::RenormalizationStarved => {
                write!(f, "2D renormalization kept missing the target lattice")
            }
            LayerFailureReason::TimelikeStarved => {
                write!(f, "time-like connections kept failing")
            }
        }
    }
}

/// Diagnostic detail for an online pass that gave up: which logical layer
/// failed to form, after consuming how much, and why.
///
/// Replaces silently inspecting [`ExecutionReport::complete`] — an
/// incomplete execution now says *what* starved it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerFailure {
    /// Zero-based index of the IR logical layer that failed to form.
    pub layer_index: usize,
    /// Dominant failure mode of the attempts.
    pub reason: LayerFailureReason,
    /// Merged layers consumed by the failed attempt (the safety cap).
    pub merged_layers: usize,
    /// Attempts that failed 2D renormalization.
    pub renorm_failures: usize,
    /// Attempts that renormalized but failed a time-like connection.
    pub timelike_failures: usize,
}

impl fmt::Display for LayerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logical layer {} failed to form after {} merged layers \
             ({} renormalization failures, {} time-like failures): {}",
            self.layer_index,
            self.merged_layers,
            self.renorm_failures,
            self.timelike_failures,
            self.reason
        )
    }
}

/// Typed outcome of an online execution: the metrics, plus — when the run
/// gave up — the failed layer's diagnostics instead of a silent
/// `complete: false`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub enum ExecuteOutcome {
    /// Every requested logical layer was formed.
    Complete(ExecutionReport),
    /// A logical layer hit the safety cap; `report` covers everything
    /// consumed up to (and including) the failed attempt.
    Incomplete {
        /// Metrics of the partial run.
        report: ExecutionReport,
        /// Which layer failed, and why.
        failure: LayerFailure,
    },
}

impl ExecuteOutcome {
    /// Whether every logical layer was formed.
    pub fn is_complete(&self) -> bool {
        matches!(self, ExecuteOutcome::Complete(_))
    }

    /// The execution metrics, complete or not.
    pub fn report(&self) -> &ExecutionReport {
        match self {
            ExecuteOutcome::Complete(report) => report,
            ExecuteOutcome::Incomplete { report, .. } => report,
        }
    }

    /// Consumes the outcome into its metrics, complete or not.
    pub fn into_report(self) -> ExecutionReport {
        match self {
            ExecuteOutcome::Complete(report) => report,
            ExecuteOutcome::Incomplete { report, .. } => report,
        }
    }

    /// The failed layer's diagnostics, when the run gave up.
    pub fn failure(&self) -> Option<&LayerFailure> {
        match self {
            ExecuteOutcome::Complete(_) => None,
            ExecuteOutcome::Incomplete { failure, .. } => Some(failure),
        }
    }

    /// Converts to a `Result`, mapping an incomplete run onto
    /// [`CompileError::Incomplete`](crate::CompileError::Incomplete).
    pub fn into_result(self) -> Result<ExecutionReport, crate::CompileError> {
        match self {
            ExecuteOutcome::Complete(report) => Ok(report),
            ExecuteOutcome::Incomplete { failure, .. } => {
                Err(crate::CompileError::Incomplete(failure))
            }
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "#RSL            {:>12}", self.rsl_consumed)?;
        writeln!(f, "#fusion         {:>12}", self.fusions)?;
        writeln!(f, "logical layers  {:>12}", self.logical_layers)?;
        writeln!(f, "routing layers  {:>12}", self.routing_layers)?;
        writeln!(f, "PL ratio        {:>12.2}", self.pl_ratio())?;
        writeln!(f, "peak memory     {:>9.2} GiB", self.peak_memory_gib())?;
        writeln!(
            f,
            "online pipeline {:>12}",
            if self.pipelined { "2-stage" } else { "serial" }
        )?;
        writeln!(
            f,
            "offline time    {:>9.2} s",
            self.offline_time.as_secs_f64()
        )?;
        write!(f, "online time     {:>9.2} s", self.online_time.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let report = ExecutionReport {
            rsl_consumed: 90,
            merged_layers: 30,
            logical_layers: 10,
            routing_layers: 20,
            online_time: Duration::from_secs(3),
            ..ExecutionReport::default()
        };
        assert!((report.pl_ratio() - 3.0).abs() < 1e-12);
        assert!((report.online_seconds_per_layer() - 0.1).abs() < 1e-12);
        assert_eq!(ExecutionReport::default().pl_ratio(), 0.0);
        assert_eq!(ExecutionReport::default().online_seconds_per_layer(), 0.0);
    }

    #[test]
    fn display_contains_metrics() {
        let report = ExecutionReport { rsl_consumed: 42, fusions: 7, ..Default::default() };
        let text = report.to_string();
        assert!(text.contains("#RSL"));
        assert!(text.contains("42"));
        assert!(text.contains("#fusion"));
    }
}
