//! Execution metrics: the paper's `#RSL` and `#fusion`, plus supporting
//! statistics, and the counters of the service layer's compiled-program
//! cache.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Counters of a session's content-addressed compiled-program cache at a
/// point in time (see [`crate::service::ProgramCache`]).
///
/// A snapshot travels on every [`ExecutionReport`] produced through a
/// cached entry point ([`Session::sweep`](crate::Session::sweep),
/// [`AsyncSession::submit_circuit`](crate::service::AsyncSession::submit_circuit),
/// …) so service callers can observe hit rates in-band; reports from
/// explicit-program paths carry the all-zero default. The counters describe
/// the session's *traffic history*, not the execution itself —
/// [`ExecutionReport::deterministic`] therefore clears them along with the
/// wall-clock fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the offline pass.
    pub misses: u64,
    /// Entries displaced to make room (LRU order).
    pub evictions: u64,
    /// Programs currently resident.
    pub entries: usize,
    /// Maximum resident programs (`0` = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0}% hit rate), {} of {} entries resident, {} evictions",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.capacity,
            self.evictions
        )
    }
}

/// Per-tenant scheduling telemetry stamped by the service entry points
/// ([`Session::sweep`](crate::Session::sweep),
/// [`AsyncSession::submit`](crate::service::AsyncSession::submit), …).
///
/// These fields describe how the *scheduler* treated one job — how deep
/// the admission queue was when it was accepted, how long it waited for a
/// lane, and whether its program came out of the shared cache. Like the
/// wall-clock fields they are operational, not a function of
/// `(config, circuit, seed)`, so [`ExecutionReport::deterministic`]
/// clears them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct ServiceTelemetry {
    /// Jobs already admitted (in flight) when this job was accepted,
    /// including this one — `1` means it had the service to itself.
    pub queue_depth: u64,
    /// Wall-clock time between submission and the lane starting the run.
    pub queue_wait: Duration,
    /// Whether this job's compiled program was answered from the cache
    /// (waiters served by another tenant's in-flight compile count as
    /// hits).
    pub cache_hit: bool,
}

/// The metrics of one end-to-end compilation + execution, aligned with the
/// columns of Table 2 and the series of the analysis figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[must_use]
pub struct ExecutionReport {
    /// Raw resource-state layers consumed — the paper's `#RSL`.
    pub rsl_consumed: u64,
    /// Merged layers consumed (equals `#RSL` divided by the merging factor).
    pub merged_layers: u64,
    /// Fusions attempted — the paper's `#fusion`.
    pub fusions: u64,
    /// Logical layers formed by the online pass (equals the layers of the IR
    /// program when execution completes).
    pub logical_layers: u64,
    /// Routing layers consumed along the way.
    pub routing_layers: u64,
    /// Virtual-hardware layers requested by the offline pass.
    pub ir_layers: usize,
    /// Program-graph nodes mapped by the offline pass.
    pub program_nodes: usize,
    /// Whether every requested logical layer was formed within the safety
    /// caps.
    pub complete: bool,
    /// Whether the online pass ran on the double-buffered RSL pipeline
    /// (the metrics are byte-identical either way for a fixed seed; only
    /// the wall-clock differs).
    pub pipelined: bool,
    /// Peak classical-memory estimate in bytes for the real-time stage.
    pub peak_memory_bytes: u64,
    /// Compiled-program cache counters at report time, when the execution
    /// came through a cached entry point (all-zero default otherwise). Like
    /// the wall-clock fields this is operational telemetry, not a function
    /// of `(config, circuit, seed)`; [`ExecutionReport::deterministic`]
    /// clears it.
    pub cache: CacheStats,
    /// Per-tenant scheduling telemetry, when the execution came through a
    /// service entry point (all-zero default otherwise). Operational like
    /// the wall-clock fields; [`ExecutionReport::deterministic`] clears it.
    pub service: ServiceTelemetry,
    /// Wall-clock time spent in the offline pass.
    pub offline_time: Duration,
    /// Wall-clock time spent simulating the online pass.
    pub online_time: Duration,
}

impl ExecutionReport {
    /// The PL ratio: merged layers consumed per logical layer (Fig. 13(b)).
    pub fn pl_ratio(&self) -> f64 {
        if self.logical_layers == 0 {
            0.0
        } else {
            self.merged_layers as f64 / self.logical_layers as f64
        }
    }

    /// Peak classical memory in gibibytes.
    pub fn peak_memory_gib(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1u64 << 30) as f64
    }

    /// Average online processing time per merged layer (Fig. 14).
    pub fn online_seconds_per_layer(&self) -> f64 {
        if self.merged_layers == 0 {
            0.0
        } else {
            self.online_time.as_secs_f64() / self.merged_layers as f64
        }
    }

    /// Per-RSL latency: raw resource-state layers consumed per formed
    /// logical layer. The RSG array emits one raw layer per cycle, so this
    /// is also the number of RSG cycles a logical layer costs — the figure
    /// to hold against
    /// [`HardwareConfig::photon_lifetime_cycles`](oneperc_hardware::HardwareConfig)
    /// when asking whether photons survive until their layer forms.
    /// Returns `0.0` when no logical layer formed (mirroring
    /// [`ExecutionReport::pl_ratio`]); for complete runs it is bounded
    /// below by the merging factor.
    pub fn rsl_per_logical_layer(&self) -> f64 {
        if self.logical_layers == 0 {
            0.0
        } else {
            self.rsl_consumed as f64 / self.logical_layers as f64
        }
    }

    /// Total raw resource states consumed: every raw layer fires one
    /// resource state per RSL site, so this is `rsl_consumed ×
    /// sites_per_layer` (pass
    /// [`HardwareConfig::sites_per_rsl`](oneperc_hardware::HardwareConfig)
    /// for the compiled hardware). Widened to `u128`: large sweeps at
    /// 240×240 RSLs overflow `u64` within reach of a long tuning run.
    pub fn resource_volume(&self, sites_per_layer: usize) -> u128 {
        u128::from(self.rsl_consumed) * sites_per_layer as u128
    }

    /// Fraction of the given runs that formed every requested logical
    /// layer — the empirical success probability of a seed sweep. `0.0`
    /// for an empty slice.
    pub fn success_probability(reports: &[ExecutionReport]) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        let complete = reports.iter().filter(|r| r.complete).count();
        complete as f64 / reports.len() as f64
    }

    /// The report with its wall-clock fields and cache counters zeroed:
    /// every remaining field is a pure function of the configuration and
    /// seed, so two runs of the same `(config, circuit, seed)` must produce
    /// equal deterministic views whatever machine, session, batch or cache
    /// state they ran against. This is the comparison form used by the
    /// batch-determinism suite.
    pub fn deterministic(mut self) -> ExecutionReport {
        self.offline_time = Duration::ZERO;
        self.online_time = Duration::ZERO;
        self.cache = CacheStats::default();
        self.service = ServiceTelemetry::default();
        self
    }
}

/// Why a logical layer could not be formed within the safety cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerFailureReason {
    /// Most attempts never renormalized to the target lattice — the RSL is
    /// too small or the fusion probability too close to the percolation
    /// threshold for this virtual-hardware size.
    RenormalizationStarved,
    /// Renormalization mostly succeeded but the requested time-like
    /// connections kept failing — temporal redundancy or photon lifetime is
    /// the binding constraint.
    TimelikeStarved,
    /// The submitter cancelled the job (dropped its
    /// [`JobFuture`](crate::service::JobFuture) /
    /// [`JobHandle`](crate::JobHandle), or called `cancel()`): the online
    /// pass stopped at a layer checkpoint before consuming further merged
    /// layers. The report covers everything consumed up to the checkpoint.
    Cancelled,
}

impl fmt::Display for LayerFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerFailureReason::RenormalizationStarved => {
                write!(f, "2D renormalization kept missing the target lattice")
            }
            LayerFailureReason::TimelikeStarved => {
                write!(f, "time-like connections kept failing")
            }
            LayerFailureReason::Cancelled => {
                write!(f, "the submitter cancelled the job")
            }
        }
    }
}

/// Diagnostic detail for an online pass that gave up: which logical layer
/// failed to form, after consuming how much, and why.
///
/// Replaces silently inspecting [`ExecutionReport::complete`] — an
/// incomplete execution now says *what* starved it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerFailure {
    /// Zero-based index of the IR logical layer that failed to form.
    pub layer_index: usize,
    /// Dominant failure mode of the attempts.
    pub reason: LayerFailureReason,
    /// Merged layers consumed by the failed attempt (the safety cap).
    pub merged_layers: usize,
    /// Attempts that failed 2D renormalization.
    pub renorm_failures: usize,
    /// Attempts that renormalized but failed a time-like connection.
    pub timelike_failures: usize,
}

impl fmt::Display for LayerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logical layer {} failed to form after {} merged layers \
             ({} renormalization failures, {} time-like failures): {}",
            self.layer_index,
            self.merged_layers,
            self.renorm_failures,
            self.timelike_failures,
            self.reason
        )
    }
}

// `LayerFailure` is the error payload of an incomplete execution
// (`ExecuteOutcome::into_result` wraps it in `CompileError::Incomplete`);
// implementing `Error` lets service callers `?` it into `Box<dyn Error>`
// directly instead of matching the outcome by hand.
impl Error for LayerFailure {}

/// Typed outcome of an online execution: the metrics, plus — when the run
/// gave up — the failed layer's diagnostics instead of a silent
/// `complete: false`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub enum ExecuteOutcome {
    /// Every requested logical layer was formed.
    Complete(ExecutionReport),
    /// A logical layer hit the safety cap; `report` covers everything
    /// consumed up to (and including) the failed attempt.
    Incomplete {
        /// Metrics of the partial run.
        report: ExecutionReport,
        /// Which layer failed, and why.
        failure: LayerFailure,
    },
}

impl ExecuteOutcome {
    /// Whether every logical layer was formed.
    pub fn is_complete(&self) -> bool {
        matches!(self, ExecuteOutcome::Complete(_))
    }

    /// The execution metrics, complete or not.
    pub fn report(&self) -> &ExecutionReport {
        match self {
            ExecuteOutcome::Complete(report) => report,
            ExecuteOutcome::Incomplete { report, .. } => report,
        }
    }

    /// Consumes the outcome into its metrics, complete or not.
    pub fn into_report(self) -> ExecutionReport {
        match self {
            ExecuteOutcome::Complete(report) => report,
            ExecuteOutcome::Incomplete { report, .. } => report,
        }
    }

    /// The failed layer's diagnostics, when the run gave up.
    pub fn failure(&self) -> Option<&LayerFailure> {
        match self {
            ExecuteOutcome::Complete(_) => None,
            ExecuteOutcome::Incomplete { failure, .. } => Some(failure),
        }
    }

    /// Converts to a `Result`, mapping an incomplete run onto
    /// [`CompileError::Incomplete`](crate::CompileError::Incomplete).
    pub fn into_result(self) -> Result<ExecutionReport, crate::CompileError> {
        match self {
            ExecuteOutcome::Complete(report) => Ok(report),
            ExecuteOutcome::Incomplete { failure, .. } => {
                Err(crate::CompileError::Incomplete(failure))
            }
        }
    }

    /// The metrics, mutably — for the service stamps below.
    fn report_mut(&mut self) -> &mut ExecutionReport {
        match self {
            ExecuteOutcome::Complete(report) => report,
            ExecuteOutcome::Incomplete { report, .. } => report,
        }
    }

    /// Stamps the report with this lookup's cache counters and whether it
    /// hit; used by the cached entry points of the session and the async
    /// service so hit rates are observable in-band. The counters are the
    /// lookup's own atomic snapshot, not a post-hoc cache read — traffic
    /// from concurrent tenants (or later lookups of the same sweep) cannot
    /// smear them.
    pub(crate) fn with_cache_stamp(mut self, hit: bool, stats: CacheStats) -> ExecuteOutcome {
        let report = self.report_mut();
        report.cache = stats;
        report.service.cache_hit = hit;
        self
    }

    /// Stamps the report with the scheduler's admission telemetry: how
    /// many jobs were in flight when this one was accepted and how long it
    /// waited for a lane.
    pub(crate) fn with_queue_telemetry(mut self, depth: u64, wait: Duration) -> ExecuteOutcome {
        let report = self.report_mut();
        report.service.queue_depth = depth;
        report.service.queue_wait = wait;
        self
    }
}

impl fmt::Display for ExecuteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecuteOutcome::Complete(report) => report.fmt(f),
            ExecuteOutcome::Incomplete { failure, .. } => {
                write!(f, "incomplete execution: {failure}")
            }
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "#RSL            {:>12}", self.rsl_consumed)?;
        writeln!(f, "#fusion         {:>12}", self.fusions)?;
        writeln!(f, "logical layers  {:>12}", self.logical_layers)?;
        writeln!(f, "routing layers  {:>12}", self.routing_layers)?;
        writeln!(f, "PL ratio        {:>12.2}", self.pl_ratio())?;
        writeln!(f, "peak memory     {:>9.2} GiB", self.peak_memory_gib())?;
        writeln!(
            f,
            "online pipeline {:>12}",
            if self.pipelined { "2-stage" } else { "serial" }
        )?;
        if self.cache.lookups() > 0 {
            writeln!(f, "program cache   {}", self.cache)?;
        }
        writeln!(
            f,
            "offline time    {:>9.2} s",
            self.offline_time.as_secs_f64()
        )?;
        write!(f, "online time     {:>9.2} s", self.online_time.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let report = ExecutionReport {
            rsl_consumed: 90,
            merged_layers: 30,
            logical_layers: 10,
            routing_layers: 20,
            online_time: Duration::from_secs(3),
            ..ExecutionReport::default()
        };
        assert!((report.pl_ratio() - 3.0).abs() < 1e-12);
        assert!((report.online_seconds_per_layer() - 0.1).abs() < 1e-12);
        assert_eq!(ExecutionReport::default().pl_ratio(), 0.0);
        assert_eq!(ExecutionReport::default().online_seconds_per_layer(), 0.0);
    }

    #[test]
    fn cost_model_accessors() {
        let report = ExecutionReport {
            rsl_consumed: 90,
            merged_layers: 30,
            logical_layers: 10,
            complete: true,
            ..ExecutionReport::default()
        };
        assert!((report.rsl_per_logical_layer() - 9.0).abs() < 1e-12);
        assert_eq!(ExecutionReport::default().rsl_per_logical_layer(), 0.0);
        // 90 raw layers × 576 sites = 51 840 resource states.
        assert_eq!(report.resource_volume(576), 51_840);
        assert_eq!(report.resource_volume(0), 0);
        // Widening: a u64-overflowing volume stays exact in u128.
        let huge = ExecutionReport { rsl_consumed: u64::MAX, ..ExecutionReport::default() };
        assert_eq!(huge.resource_volume(4), u128::from(u64::MAX) * 4);

        let incomplete = ExecutionReport { complete: false, ..report };
        let sweep = [report, report, incomplete, incomplete];
        assert!((ExecutionReport::success_probability(&sweep) - 0.5).abs() < 1e-12);
        assert!((ExecutionReport::success_probability(&[report]) - 1.0).abs() < 1e-12);
        assert_eq!(ExecutionReport::success_probability(&[]), 0.0);
    }

    #[test]
    fn display_contains_metrics() {
        let report = ExecutionReport { rsl_consumed: 42, fusions: 7, ..Default::default() };
        let text = report.to_string();
        assert!(text.contains("#RSL"));
        assert!(text.contains("42"));
        assert!(text.contains("#fusion"));
        assert!(!text.contains("program cache"), "idle cache stays out of the report");
        let cached = ExecutionReport {
            cache: CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1, capacity: 8 },
            ..report
        };
        assert!(cached.to_string().contains("program cache"));
    }

    #[test]
    fn cache_stats_ratios_and_display() {
        let stats = CacheStats { hits: 3, misses: 1, evictions: 2, entries: 4, capacity: 8 };
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let text = stats.to_string();
        assert!(text.contains("3 hits"));
        assert!(text.contains("75% hit rate"));
        assert!(text.contains("2 evictions"));
    }

    #[test]
    fn deterministic_clears_cache_counters() {
        let report = ExecutionReport {
            rsl_consumed: 9,
            cache: CacheStats { hits: 5, misses: 1, evictions: 0, entries: 1, capacity: 4 },
            service: ServiceTelemetry {
                queue_depth: 3,
                queue_wait: Duration::from_millis(7),
                cache_hit: true,
            },
            online_time: Duration::from_secs(1),
            ..Default::default()
        };
        let det = report.deterministic();
        assert_eq!(det.cache, CacheStats::default());
        assert_eq!(det.service, ServiceTelemetry::default());
        assert_eq!(det.rsl_consumed, 9);
        assert_eq!(det.online_time, Duration::ZERO);
    }

    #[test]
    fn service_stamps_land_on_either_outcome_form() {
        let report = ExecutionReport::default();
        let stats = CacheStats { hits: 2, misses: 1, evictions: 0, entries: 1, capacity: 4 };
        let complete = ExecuteOutcome::Complete(report)
            .with_cache_stamp(true, stats)
            .with_queue_telemetry(2, Duration::from_millis(5));
        assert!(complete.report().service.cache_hit);
        assert_eq!(complete.report().service.queue_depth, 2);
        assert_eq!(complete.report().cache, stats);

        let failure = LayerFailure {
            layer_index: 0,
            reason: LayerFailureReason::Cancelled,
            merged_layers: 1,
            renorm_failures: 1,
            timelike_failures: 0,
        };
        let incomplete = ExecuteOutcome::Incomplete { report, failure }
            .with_cache_stamp(false, stats)
            .with_queue_telemetry(1, Duration::ZERO);
        assert!(!incomplete.report().service.cache_hit);
        assert_eq!(incomplete.report().cache, stats);
        assert!(failure.to_string().contains("cancelled"));
    }

    #[test]
    fn layer_failure_is_a_std_error() {
        let failure = LayerFailure {
            layer_index: 2,
            reason: LayerFailureReason::TimelikeStarved,
            merged_layers: 10,
            renorm_failures: 1,
            timelike_failures: 9,
        };
        // `?`-compatibility: the failure coerces into `Box<dyn Error>`.
        let boxed: Box<dyn Error> = Box::new(failure);
        assert!(boxed.to_string().contains("logical layer 2"));
    }

    #[test]
    fn outcome_display_covers_both_forms() {
        let report = ExecutionReport { rsl_consumed: 42, ..Default::default() };
        assert!(ExecuteOutcome::Complete(report).to_string().contains("#RSL"));
        let failure = LayerFailure {
            layer_index: 0,
            reason: LayerFailureReason::RenormalizationStarved,
            merged_layers: 3,
            renorm_failures: 3,
            timelike_failures: 0,
        };
        let text = ExecuteOutcome::Incomplete { report, failure }.to_string();
        assert!(text.contains("incomplete execution"));
        assert!(text.contains("logical layer 0"));
    }
}
