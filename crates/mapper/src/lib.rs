//! Offline pass of the OnePerc compiler: mapping program graph states onto
//! the virtual hardware (Section 6.2).
//!
//! The mapper consumes a [`oneperc_circuit::ProgramGraph`] and produces a
//! [`oneperc_ir::FlexLatticeIr`] program (plus its instruction lowering)
//! that realizes the program graph on the virtual hardware: program nodes
//! are placed on lattice coordinates, graph edges become spatial ancilla
//! routes within a layer or temporal edges between layers, and nodes whose
//! edges are not finished yet persist through the per-coordinate virtual
//! memory.
//!
//! Three optimizations from the paper extend the OneQ mapping strategy:
//!
//! 1. **Dynamic scheduling** — the dependency DAG's front layer decides
//!    which program nodes may be mapped next, instead of a static partition.
//! 2. **Occupancy limit** — at most a configurable fraction (25 % by
//!    default) of each layer may be occupied by *incomplete* nodes, keeping
//!    room for ancilla routing.
//! 3. **Refresh** — every `refresh_period` layers the nodes parked in the
//!    virtual memory are retrieved and re-mapped, bounding the classical
//!    memory needed for graph-information storage at the cost of extra
//!    layers (Table 3).
//!
//! # Example
//!
//! ```
//! use oneperc_circuit::{benchmarks, ProgramGraph};
//! use oneperc_ir::VirtualHardware;
//! use oneperc_mapper::{Mapper, MapperConfig};
//!
//! let program = ProgramGraph::from_circuit(&benchmarks::qft(3));
//! let mapper = Mapper::new(MapperConfig::new(VirtualHardware::square(3)));
//! let result = mapper.map(&program).unwrap();
//! assert!(result.complete);
//! assert!(result.ir.layer_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod mapping;

pub use config::MapperConfig;
pub use mapping::{MapError, Mapper, MapperStats, MappingResult};
