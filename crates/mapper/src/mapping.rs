//! The mapping algorithm: program graph state → FlexLattice IR.

use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use oneperc_circuit::ProgramGraph;
use oneperc_ir::{FlexLatticeIr, InstructionProgram, IrError, NodeKind, VirtualHardware};

use crate::config::MapperConfig;

/// Errors produced by the offline mapping pass.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The virtual hardware cannot hold the program.
    HardwareTooSmall {
        /// Nodes that needed to be live at once.
        needed: usize,
        /// Coordinates available per layer.
        available: usize,
    },
    /// The layer budget ran out before the program finished mapping.
    LayerBudgetExhausted {
        /// The configured cap.
        limit: usize,
    },
    /// An IR construction rule was violated (indicates a mapper bug).
    Ir(IrError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::HardwareTooSmall { needed, available } => write!(
                f,
                "virtual hardware too small: {needed} simultaneously live nodes but only {available} coordinates"
            ),
            MapError::LayerBudgetExhausted { limit } => {
                write!(f, "mapping did not finish within {limit} layers")
            }
            MapError::Ir(e) => write!(f, "ir construction failed: {e}"),
        }
    }
}

impl Error for MapError {}

impl From<IrError> for MapError {
    fn from(e: IrError) -> Self {
        MapError::Ir(e)
    }
}

/// Aggregate statistics of one mapping run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapperStats {
    /// Virtual-hardware layers emitted (the number of logical layers the
    /// online pass must form).
    pub layers: usize,
    /// Program-graph nodes mapped.
    pub program_nodes: usize,
    /// Ancilla nodes spent on routing.
    pub ancilla_nodes: usize,
    /// Spatial edges enabled.
    pub spatial_edges: usize,
    /// Temporal edges enabled (adjacent plus cross-layer).
    pub temporal_edges: usize,
    /// Temporal edges that cross at least one layer (virtual-memory
    /// round-trips).
    pub cross_layer_edges: usize,
    /// Peak number of simultaneously incomplete (live) program nodes.
    pub peak_live_nodes: usize,
    /// Peak number of live nodes parked in the virtual memory.
    pub peak_stored_nodes: usize,
    /// Refresh rounds performed.
    pub refreshes: usize,
    /// Edge realizations that had to be deferred to a later layer.
    pub deferred_edges: usize,
}

/// The output of a mapping run.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// The FlexLattice IR program.
    pub ir: FlexLatticeIr,
    /// Its instruction lowering.
    pub instructions: InstructionProgram,
    /// Statistics of the run.
    pub stats: MapperStats,
    /// `true` when every program node and edge was realized.
    pub complete: bool,
}

/// Per-live-node bookkeeping: where the node lives and which of its graph
/// edges are still unrealized.
#[derive(Debug, Clone)]
struct Live {
    coord: (usize, usize),
    last_layer: usize,
    pending: HashSet<usize>,
}

/// The offline mapper.
#[derive(Debug, Clone)]
pub struct Mapper {
    config: MapperConfig,
}

/// Mutable state of one mapping run, threaded through the per-layer steps.
struct RunState<'p> {
    program: &'p ProgramGraph,
    ir: FlexLatticeIr,
    live: HashMap<usize, Live>,
    mapped: HashSet<usize>,
    stats: MapperStats,
    refresh_queue: VecDeque<usize>,
    /// Next layer index at which a refresh round may start.
    next_refresh: usize,
    /// Cursor into the creation order for the static-partition mode.
    static_cursor: usize,
}

impl Mapper {
    /// Creates a mapper with the given configuration.
    pub fn new(config: MapperConfig) -> Self {
        Mapper { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Maps a program graph state onto the virtual hardware.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::LayerBudgetExhausted`] when the configured layer
    /// cap is reached before the program is fully mapped,
    /// [`MapError::HardwareTooSmall`] when no placement is possible, and
    /// [`MapError::Ir`] if an internal IR rule is violated (a bug).
    pub fn map(&self, program: &ProgramGraph) -> Result<MappingResult, MapError> {
        let hw = self.config.hardware;
        let k2 = hw.nodes_per_layer();
        let cap_incomplete = self.config.max_incomplete_nodes();

        let dag = program.dependency_dag();
        let mut sched = dag.scheduler();
        let creation_rank: HashMap<usize, usize> = program
            .creation_order()
            .iter()
            .enumerate()
            .map(|(rank, &v)| (v, rank))
            .collect();

        let mut state = RunState {
            program,
            ir: FlexLatticeIr::new(hw),
            live: HashMap::new(),
            mapped: HashSet::new(),
            stats: MapperStats::default(),
            refresh_queue: VecDeque::new(),
            next_refresh: self.config.refresh_period.unwrap_or(usize::MAX),
            static_cursor: 0,
        };
        let total_nodes = program.node_count();

        while state.mapped.len() < total_nodes
            || state.live.values().any(|l| !l.pending.is_empty())
        {
            if state.ir.layer_count() >= self.config.max_layers {
                return Err(MapError::LayerBudgetExhausted { limit: self.config.max_layers });
            }
            let z = state.ir.push_layer();
            let mut occupied: HashSet<(usize, usize)> = HashSet::new();
            let mut present: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut progressed = false;

            // ---- Refresh round (third optimization of Section 6.2) ----
            if let Some(period) = self.config.refresh_period {
                if z >= state.next_refresh && state.refresh_queue.is_empty() {
                    let mut stored: Vec<usize> = state
                        .live
                        .iter()
                        .filter(|(_, l)| l.last_layer + 1 < z)
                        .map(|(&g, _)| g)
                        .collect();
                    stored.sort_unstable();
                    if !stored.is_empty() {
                        state.refresh_queue.extend(stored);
                        state.stats.refreshes += 1;
                    }
                    // Whether or not anything needed refreshing, wait a full
                    // period of ordinary mapping before the next round.
                    state.next_refresh = z + period;
                }
            }
            let refreshing = !state.refresh_queue.is_empty();
            if refreshing {
                if let Some(period) = self.config.refresh_period {
                    // The refresh round is still draining: postpone the next
                    // one so ordinary mapping always gets a full period.
                    state.next_refresh = z + period;
                }
                let mut brought = 0;
                while brought < cap_incomplete {
                    let Some(g) = state.refresh_queue.pop_front() else { break };
                    if !state.live.contains_key(&g) {
                        continue;
                    }
                    if bring_live_node(&hw, &mut state, z, g, &mut occupied, &mut present)? {
                        brought += 1;
                        progressed = true;
                    } else {
                        state.refresh_queue.push_back(g);
                        break;
                    }
                }
            } else {
                // ---- Step 1: bring and immediately route deferred edges ----
                // A deferred edge connects two nodes that are both already
                // mapped; they are brought onto this layer together and
                // routed right away, so the layer never fills up with
                // carried nodes whose edges cannot be completed any more.
                let free_needed = (k2 / 2).clamp(2, 4);
                let pairs = pending_pairs(&state.live);
                for (u, v) in pairs {
                    if k2 - occupied.len() < free_needed + 2
                        || present.len() + 2 > cap_incomplete.max(2) + 2
                    {
                        break;
                    }
                    let mut both_present = true;
                    for g in [u, v] {
                        if present.contains_key(&g) {
                            continue;
                        }
                        if !bring_live_node(&hw, &mut state, z, g, &mut occupied, &mut present)? {
                            both_present = false;
                        }
                    }
                    if !both_present {
                        continue;
                    }
                    let (cu, cv) = (present[&u], present[&v]);
                    if route_edge(&hw, &mut state.ir, z, cu, cv, &mut occupied)? {
                        state.live.get_mut(&u).expect("live").pending.remove(&v);
                        state.live.get_mut(&v).expect("live").pending.remove(&u);
                        progressed = true;
                    } else {
                        state.stats.deferred_edges += 1;
                    }
                }

                // ---- Step 2: place new nodes from the schedule front ----
                // Newly ready successors (for example the next node on the
                // same wire) may be placed on the same layer, exactly as the
                // chains of Fig. 11 of the paper; the DAG order only
                // constrains the *order* of placement. A quarter of the
                // layer is kept free for ancilla routing.
                let placement_cap = k2 - (k2 / 4).max(1);
                if self.config.dynamic_scheduling {
                    let mut queue: Vec<usize> = sched.front().to_vec();
                    queue.sort_by_key(|g| creation_rank[g]);
                    while let Some(g) = queue.first().copied() {
                        queue.remove(0);
                        if occupied.len() >= placement_cap {
                            break;
                        }
                        let neighbors = neighbor_ids(program, g);
                        let will_be_incomplete =
                            neighbors.iter().any(|n| !state.mapped.contains(n) && *n != g);
                        let incomplete_present = present
                            .keys()
                            .filter(|p| state.live.get(p).is_some_and(|l| !l.pending.is_empty()))
                            .count();
                        if will_be_incomplete
                            && incomplete_present >= cap_incomplete
                            && progressed
                        {
                            continue;
                        }
                        let Some(coord) =
                            choose_coord(&hw, &occupied, &neighbors, &present, &state.live)
                        else {
                            continue;
                        };
                        place_program_node(&mut state, z, g, coord)?;
                        occupied.insert(coord);
                        present.insert(g, coord);
                        let newly_ready = sched.consume(g);
                        progressed = true;
                        queue.extend(newly_ready);
                        queue.sort_by_key(|g| creation_rank[g]);
                        queue.dedup();
                    }
                } else {
                    // Static partition (the OneQ behaviour): fill the layer
                    // with the next contiguous chunk of nodes in creation
                    // order, without reordering and without an occupancy
                    // reservation.
                    while occupied.len() < placement_cap {
                        let Some(&g) = program.creation_order().get(state.static_cursor) else {
                            break;
                        };
                        if state.mapped.contains(&g) {
                            state.static_cursor += 1;
                            continue;
                        }
                        let neighbors = neighbor_ids(program, g);
                        let Some(coord) =
                            choose_coord(&hw, &occupied, &neighbors, &present, &state.live)
                        else {
                            break;
                        };
                        place_program_node(&mut state, z, g, coord)?;
                        occupied.insert(coord);
                        present.insert(g, coord);
                        sched.consume(g);
                        state.static_cursor += 1;
                        progressed = true;
                    }
                }
            }

            // ---- Step 3: realize edges between co-present nodes ----
            let mut present_nodes: Vec<usize> = present.keys().copied().collect();
            present_nodes.sort_unstable();
            for &u in &present_nodes {
                let partners: Vec<usize> = state
                    .live
                    .get(&u)
                    .map(|l| {
                        l.pending
                            .iter()
                            .copied()
                            .filter(|v| *v > u && present.contains_key(v))
                            .collect()
                    })
                    .unwrap_or_default();
                for v in partners {
                    let (cu, cv) = (present[&u], present[&v]);
                    if route_edge(&hw, &mut state.ir, z, cu, cv, &mut occupied)? {
                        state.live.get_mut(&u).expect("live").pending.remove(&v);
                        state.live.get_mut(&v).expect("live").pending.remove(&u);
                        progressed = true;
                    } else {
                        state.stats.deferred_edges += 1;
                    }
                }
            }

            // ---- Step 4: retire completed nodes, update peaks ----
            for g in &present_nodes {
                if state.live.get(g).is_some_and(|l| l.pending.is_empty()) {
                    state.live.remove(g);
                }
            }
            state.stats.peak_live_nodes = state.stats.peak_live_nodes.max(state.live.len());
            let stored_now = state.live.values().filter(|l| l.last_layer < z).count();
            state.stats.peak_stored_nodes = state.stats.peak_stored_nodes.max(stored_now);

            // ---- Progress guarantee ----
            if !progressed {
                if let Some(&g) = sched.front().first() {
                    let neighbors = neighbor_ids(program, g);
                    let Some(coord) =
                        choose_coord(&hw, &occupied, &neighbors, &present, &state.live)
                    else {
                        return Err(MapError::HardwareTooSmall {
                            needed: state.live.len() + 1,
                            available: k2,
                        });
                    };
                    place_program_node(&mut state, z, g, coord)?;
                    sched.consume(g);
                } else if present.is_empty() && occupied.is_empty() {
                    return Err(MapError::HardwareTooSmall {
                        needed: state.live.len(),
                        available: k2,
                    });
                }
            }
        }

        let ir_stats = state.ir.stats();
        state.stats.layers = state.ir.layer_count();
        state.stats.temporal_edges =
            ir_stats.adjacent_temporal_edges + ir_stats.cross_temporal_edges;
        state.stats.cross_layer_edges = ir_stats.cross_temporal_edges;
        state.stats.ancilla_nodes = ir_stats.ancilla_nodes;
        state.stats.spatial_edges = ir_stats.spatial_edges;
        let instructions = InstructionProgram::lower(&state.ir)?;
        Ok(MappingResult {
            ir: state.ir,
            instructions,
            stats: state.stats,
            complete: true,
        })
    }
}

/// All unordered pairs of live nodes whose mutual edge is still pending,
/// sorted for determinism.
fn pending_pairs(live: &HashMap<usize, Live>) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = live
        .iter()
        .flat_map(|(&u, l)| {
            l.pending
                .iter()
                .copied()
                .filter(move |&v| v > u && live.contains_key(&v))
                .map(move |v| (u, v))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

fn neighbor_ids(program: &ProgramGraph, g: usize) -> Vec<usize> {
    // GraphState neighbor slices are already sorted by id.
    program.graph().neighbors(g).map(<[usize]>::to_vec).unwrap_or_default()
}

/// Places a fresh program node and registers it as live.
fn place_program_node(
    state: &mut RunState<'_>,
    layer: usize,
    g: usize,
    coord: (usize, usize),
) -> Result<(), MapError> {
    state.ir.place(layer, coord, NodeKind::Program(g))?;
    if let Some(basis) = state.program.node(g).basis {
        state.ir.set_basis(layer, coord, basis)?;
    }
    state.stats.program_nodes += 1;
    let pending: HashSet<usize> = neighbor_ids(state.program, g).into_iter().collect();
    state.live.insert(g, Live { coord, last_layer: layer, pending });
    state.mapped.insert(g);
    Ok(())
}

/// Re-places a live node on layer `z` and links it to its previous
/// appearance with a temporal edge. Nodes carried from the immediately
/// preceding layer must keep their coordinate (direct fusion); nodes parked
/// in the virtual memory may re-enter at any free coordinate. Returns
/// `false` when the node could not be brought onto this layer.
fn bring_live_node(
    hw: &VirtualHardware,
    state: &mut RunState<'_>,
    z: usize,
    g: usize,
    occupied: &mut HashSet<(usize, usize)>,
    present: &mut HashMap<usize, (usize, usize)>,
) -> Result<bool, MapError> {
    let Some(info) = state.live.get(&g).cloned() else { return Ok(false) };
    let adjacent_carry = info.last_layer + 1 == z;
    let coord = if !occupied.contains(&info.coord) {
        Some(info.coord)
    } else if adjacent_carry {
        // Adjacent carries must stay at their coordinate; skip this layer
        // and let the node travel through the virtual memory instead.
        None
    } else {
        // Relocate: pick the free coordinate closest to the old home.
        hw.coords()
            .filter(|c| !occupied.contains(c))
            .min_by_key(|&(x, y)| x.abs_diff(info.coord.0) + y.abs_diff(info.coord.1))
    };
    let Some(coord) = coord else { return Ok(false) };
    state.ir.place(z, coord, NodeKind::Program(g))?;
    if adjacent_carry || coord == info.coord {
        state.ir.enable_temporal_edge(coord, info.last_layer, z)?;
    } else {
        state
            .ir
            .enable_temporal_edge_relocated(info.last_layer, info.coord, z, coord)?;
    }
    occupied.insert(coord);
    present.insert(g, coord);
    let live = state.live.get_mut(&g).expect("live");
    live.coord = coord;
    live.last_layer = z;
    Ok(true)
}

/// Picks a free coordinate for a new node, minimizing the total Manhattan
/// distance to the coordinates of its already-placed neighbors.
fn choose_coord(
    hw: &VirtualHardware,
    occupied: &HashSet<(usize, usize)>,
    neighbors: &[usize],
    present: &HashMap<usize, (usize, usize)>,
    live: &HashMap<usize, Live>,
) -> Option<(usize, usize)> {
    let anchor_coords: Vec<(usize, usize)> = neighbors
        .iter()
        .filter_map(|n| present.get(n).copied().or_else(|| live.get(n).map(|l| l.coord)))
        .collect();
    let mut best: Option<((usize, usize), usize)> = None;
    for coord in hw.coords() {
        if occupied.contains(&coord) {
            continue;
        }
        let score: usize = if anchor_coords.is_empty() {
            coord.0 + coord.1
        } else {
            anchor_coords
                .iter()
                .map(|&(x, y)| x.abs_diff(coord.0) + y.abs_diff(coord.1))
                .sum()
        };
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((coord, score));
        }
    }
    best.map(|(c, _)| c)
}

/// Routes an edge between two coordinates of the same layer through free
/// coordinates, placing ancillas along the way. Returns `false` when no
/// route exists on this layer.
fn route_edge(
    hw: &VirtualHardware,
    ir: &mut FlexLatticeIr,
    z: usize,
    a: (usize, usize),
    b: (usize, usize),
    occupied: &mut HashSet<(usize, usize)>,
) -> Result<bool, MapError> {
    if hw.adjacent(a, b) {
        ir.enable_spatial_edge(z, a, b)?;
        return Ok(true);
    }
    // BFS from a to b through free coordinates.
    let mut prev: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(a);
    queue.push_back(a);
    let mut found = false;
    'bfs: while let Some(cur) = queue.pop_front() {
        for nb in hw.neighbors(cur) {
            if nb == b {
                prev.insert(nb, cur);
                found = true;
                break 'bfs;
            }
            if occupied.contains(&nb) || seen.contains(&nb) {
                continue;
            }
            seen.insert(nb);
            prev.insert(nb, cur);
            queue.push_back(nb);
        }
    }
    if !found {
        return Ok(false);
    }
    // Reconstruct and materialize the route.
    let mut path = vec![b];
    let mut cur = b;
    while cur != a {
        let p = prev[&cur];
        path.push(p);
        cur = p;
    }
    path.reverse();
    for window in path.windows(2) {
        let (from, to) = (window[0], window[1]);
        if to != b && ir.node(z, to).is_none() {
            ir.place(z, to, NodeKind::Ancilla)?;
            occupied.insert(to);
        }
        ir.enable_spatial_edge(z, from, to)?;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneperc_circuit::{benchmarks, Circuit, Gate};
    use oneperc_ir::InstructionInterpreter;

    fn map_benchmark(
        bench: benchmarks::Benchmark,
        n: usize,
        side: usize,
    ) -> MappingResult {
        let program = ProgramGraph::from_circuit(&bench.circuit(n, 7));
        Mapper::new(MapperConfig::new(VirtualHardware::square(side)))
            .map(&program)
            .expect("mapping should succeed")
    }

    #[test]
    fn maps_tiny_circuit_completely() {
        let mut c = Circuit::new(2);
        c.push(Gate::H { qubit: 0 });
        c.push(Gate::Cnot { control: 0, target: 1 });
        let program = ProgramGraph::from_circuit(&c);
        let result = Mapper::new(MapperConfig::new(VirtualHardware::square(2)))
            .map(&program)
            .unwrap();
        assert!(result.complete);
        assert_eq!(result.stats.program_nodes, program.node_count());
        assert!(result.ir.validate().is_ok());
    }

    #[test]
    fn every_program_edge_is_realized() {
        let program = ProgramGraph::from_circuit(&benchmarks::qft(3));
        let result = Mapper::new(MapperConfig::new(VirtualHardware::square(3)))
            .map(&program)
            .unwrap();
        assert!(result.complete);
        // Spatial + temporal edges must cover at least the program edges
        // (ancilla routing and node persistence add more).
        assert!(
            result.stats.spatial_edges + result.stats.temporal_edges >= program.edge_count(),
            "edges {} + {} < program edges {}",
            result.stats.spatial_edges,
            result.stats.temporal_edges,
            program.edge_count()
        );
    }

    #[test]
    fn lowered_instructions_pass_the_interpreter() {
        let result = map_benchmark(benchmarks::Benchmark::Qaoa, 4, 2);
        let mut interp = InstructionInterpreter::new();
        interp.run(&result.instructions).unwrap();
        assert!(interp.executed() > 0);
    }

    #[test]
    fn all_benchmarks_map_on_paper_sized_hardware() {
        for bench in benchmarks::Benchmark::all() {
            let result = map_benchmark(bench, 4, 2);
            assert!(result.complete, "{bench} did not complete");
            assert!(result.stats.layers > 0);
            assert!(result.ir.validate().is_ok(), "{bench} produced invalid IR");
            assert_eq!(
                result.stats.program_nodes,
                ProgramGraph::from_circuit(&bench.circuit(4, 7)).node_count()
            );
        }
    }

    #[test]
    fn larger_hardware_needs_fewer_layers() {
        let program = ProgramGraph::from_circuit(&benchmarks::qft(4));
        let small = Mapper::new(MapperConfig::new(VirtualHardware::square(2)))
            .map(&program)
            .unwrap();
        let large = Mapper::new(MapperConfig::new(VirtualHardware::square(5)))
            .map(&program)
            .unwrap();
        assert!(
            large.stats.layers <= small.stats.layers,
            "larger hardware should not need more layers ({} vs {})",
            large.stats.layers,
            small.stats.layers
        );
    }

    #[test]
    fn refresh_bounds_memory_but_costs_layers() {
        let program = ProgramGraph::from_circuit(&benchmarks::qaoa(6, 3));
        let hw = VirtualHardware::square(3);
        let without = Mapper::new(MapperConfig::new(hw)).map(&program).unwrap();
        let with = Mapper::new(MapperConfig::new(hw).with_refresh_period(Some(5)))
            .map(&program)
            .unwrap();
        assert!(with.stats.refreshes >= 1 || without.stats.peak_stored_nodes == 0);
        assert!(
            with.stats.layers >= without.stats.layers,
            "refresh should not reduce the layer count"
        );
    }

    #[test]
    fn dynamic_and_static_scheduling_both_complete() {
        // The two scheduling modes trade layer count against routing
        // pressure differently (the static OneQ-style partition packs
        // densely but defers more edges); both must produce valid, complete
        // mappings of the same program.
        let program = ProgramGraph::from_circuit(&benchmarks::qft(4));
        let hw = VirtualHardware::square(3);
        let dynamic = Mapper::new(MapperConfig::new(hw)).map(&program).unwrap();
        let static_ = Mapper::new(MapperConfig::new(hw).with_dynamic_scheduling(false))
            .map(&program)
            .unwrap();
        assert!(dynamic.complete && static_.complete);
        assert_eq!(dynamic.stats.program_nodes, static_.stats.program_nodes);
        assert!(dynamic.ir.validate().is_ok());
        assert!(static_.ir.validate().is_ok());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let result = map_benchmark(benchmarks::Benchmark::Vqe, 4, 3);
        let ir_stats = result.ir.stats();
        assert_eq!(result.stats.ancilla_nodes, ir_stats.ancilla_nodes);
        assert_eq!(result.stats.spatial_edges, ir_stats.spatial_edges);
        assert_eq!(result.stats.layers, result.ir.layer_count());
        assert!(result.stats.peak_live_nodes >= result.stats.peak_stored_nodes);
    }

    #[test]
    fn layer_budget_error_is_reported() {
        let program = ProgramGraph::from_circuit(&benchmarks::qft(4));
        let mut config = MapperConfig::new(VirtualHardware::square(2));
        config.max_layers = 2;
        let err = Mapper::new(config).map(&program).unwrap_err();
        assert!(matches!(err, MapError::LayerBudgetExhausted { limit: 2 }));
        assert!(err.to_string().contains("2 layers"));
    }
}
