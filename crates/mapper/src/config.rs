//! Mapper configuration.

use oneperc_ir::VirtualHardware;

/// Knobs of the offline mapping pass.
///
/// # Example
///
/// ```
/// use oneperc_ir::VirtualHardware;
/// use oneperc_mapper::MapperConfig;
///
/// let cfg = MapperConfig::new(VirtualHardware::square(4))
///     .with_occupancy_limit(0.5)
///     .with_refresh_period(Some(50));
/// assert_eq!(cfg.max_incomplete_nodes(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperConfig {
    /// Geometry of the virtual hardware layers.
    pub hardware: VirtualHardware,
    /// Maximum fraction of a layer that incomplete nodes may occupy
    /// (default 0.25, Section 6.2).
    pub occupancy_limit: f64,
    /// Refresh period in layers; `None` disables the refresh mechanism.
    pub refresh_period: Option<usize>,
    /// Use dynamic DAG-front scheduling (the OnePerc default). Disabling it
    /// falls back to a static creation-order partition, which is the OneQ
    /// behaviour and is used by the ablation benches.
    pub dynamic_scheduling: bool,
    /// Hard cap on the number of layers the mapper may emit before giving
    /// up (safety against livelock on undersized hardware).
    pub max_layers: usize,
}

impl MapperConfig {
    /// Creates a configuration with the paper's defaults (25 % occupancy
    /// limit, no refresh, dynamic scheduling).
    pub fn new(hardware: VirtualHardware) -> Self {
        MapperConfig {
            hardware,
            occupancy_limit: 0.25,
            refresh_period: None,
            dynamic_scheduling: true,
            max_layers: 100_000,
        }
    }

    /// Sets the incomplete-node occupancy limit.
    ///
    /// # Panics
    ///
    /// Panics when the limit is outside `(0, 1]`.
    pub fn with_occupancy_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0 && limit <= 1.0, "occupancy limit must be in (0, 1]");
        self.occupancy_limit = limit;
        self
    }

    /// Enables or disables the refresh mechanism.
    pub fn with_refresh_period(mut self, period: Option<usize>) -> Self {
        if let Some(p) = period {
            assert!(p > 0, "refresh period must be positive");
        }
        self.refresh_period = period;
        self
    }

    /// Enables or disables dynamic scheduling.
    pub fn with_dynamic_scheduling(mut self, dynamic: bool) -> Self {
        self.dynamic_scheduling = dynamic;
        self
    }

    /// Maximum number of incomplete nodes allowed to occupy one layer
    /// (always at least 1 so progress is possible on tiny hardware).
    pub fn max_incomplete_nodes(&self) -> usize {
        let cap = (self.occupancy_limit * self.hardware.nodes_per_layer() as f64).floor() as usize;
        cap.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = MapperConfig::new(VirtualHardware::square(10));
        assert!((cfg.occupancy_limit - 0.25).abs() < 1e-12);
        assert_eq!(cfg.refresh_period, None);
        assert!(cfg.dynamic_scheduling);
        assert_eq!(cfg.max_incomplete_nodes(), 25);
    }

    #[test]
    fn incomplete_cap_never_zero() {
        let cfg = MapperConfig::new(VirtualHardware::square(2)).with_occupancy_limit(0.1);
        assert_eq!(cfg.max_incomplete_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "occupancy limit")]
    fn invalid_occupancy_rejected() {
        let _ = MapperConfig::new(VirtualHardware::square(2)).with_occupancy_limit(0.0);
    }

    #[test]
    #[should_panic(expected = "refresh period")]
    fn zero_refresh_rejected() {
        let _ = MapperConfig::new(VirtualHardware::square(2)).with_refresh_period(Some(0));
    }
}
