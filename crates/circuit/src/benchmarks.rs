//! Benchmark circuit generators.
//!
//! These reproduce the benchmark families of the paper's evaluation
//! (Table 1): QAOA max-cut on random graphs, the quantum Fourier transform,
//! the Cuccaro ripple-carry adder and a full-entanglement VQE ansatz. All
//! generators are deterministic given their seed, which keeps the experiment
//! harness reproducible.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// The benchmark families used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Quantum approximate optimization algorithm (max-cut, random graph).
    Qaoa,
    /// Quantum Fourier transform.
    Qft,
    /// Cuccaro ripple-carry adder.
    Rca,
    /// Variational quantum eigensolver, full-entanglement ansatz.
    Vqe,
}

impl Benchmark {
    /// All benchmark families in the order used by the paper's tables.
    pub fn all() -> [Benchmark; 4] {
        [Benchmark::Qaoa, Benchmark::Qft, Benchmark::Rca, Benchmark::Vqe]
    }

    /// Short upper-case name as used in the paper (`QAOA`, `QFT`, `RCA`,
    /// `VQE`).
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Qaoa => "QAOA",
            Benchmark::Qft => "QFT",
            Benchmark::Rca => "RCA",
            Benchmark::Vqe => "VQE",
        }
    }

    /// Generates the benchmark circuit on `n_qubits` qubits with the given
    /// seed (only QAOA and VQE consume randomness).
    pub fn circuit(&self, n_qubits: usize, seed: u64) -> Circuit {
        match self {
            Benchmark::Qaoa => qaoa(n_qubits, seed),
            Benchmark::Qft => qft(n_qubits),
            Benchmark::Rca => rca(n_qubits),
            Benchmark::Vqe => vqe(n_qubits, seed),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// QAOA for max-cut on a random graph over `n` vertices where half of all
/// possible edges are present (as specified in Section 7.1), one
/// cost+mixer layer.
///
/// **Edge-count contract:** the graph has `max(1, ⌊n(n-1)/2 / 2⌋)` edges —
/// "half of all possible edges" rounded down, floored at one edge so the
/// cost unitary is never empty. The floor only binds at `n = 2`, where the
/// single possible edge would otherwise round away and the circuit would
/// degenerate to bare single-qubit layers; from `n = 3` on the plain
/// rounded half applies (including odd totals: 3 possible edges at
/// `n = 3` give 1, 15 at `n = 6` give 7). `tests::qaoa_edge_count_contract`
/// asserts this across `n = 2..=12`.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn qaoa(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "QAOA needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            all_edges.push((i, j));
        }
    }
    all_edges.shuffle(&mut rng);
    // Half of all possible edges, floored at 1 (see the contract above).
    let m = (all_edges.len() / 2).max(1);
    let edges = &all_edges[..m];

    let gamma: f64 = rng.gen_range(0.1..PI);
    let beta: f64 = rng.gen_range(0.1..PI);

    let mut c = Circuit::new(n);
    // Initial layer of Hadamards.
    for q in 0..n {
        c.push(Gate::H { qubit: q });
    }
    // Cost unitary exp(-iγ Z_i Z_j) per edge.
    for &(i, j) in edges {
        c.push(Gate::Cnot { control: i, target: j });
        c.push(Gate::Rz { qubit: j, theta: 2.0 * gamma });
        c.push(Gate::Cnot { control: i, target: j });
    }
    // Mixer layer exp(-iβ X_q).
    for q in 0..n {
        c.push(Gate::Rx { qubit: q, theta: 2.0 * beta });
    }
    c
}

/// The `n`-qubit quantum Fourier transform (without the final qubit-reversal
/// swaps, matching common compiler benchmarks).
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "QFT needs at least 1 qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H { qubit: i });
        for j in (i + 1)..n {
            let theta = PI / f64::from(1u32 << (j - i).min(30) as u32);
            c.push(Gate::Cphase { control: j, target: i, theta });
        }
    }
    c
}

/// Cuccaro-style ripple-carry adder using `n` qubits in total.
///
/// The register is split into an ancilla/carry-in qubit, two ⌊(n-1)/2⌋-bit
/// operand registers and (when `n` is even) a carry-out qubit, so every
/// qubit of the budget participates for both parities: even `n` is
/// `1 + 2·(n-2)/2 + 1` and odd `n` is `1 + 2·(n-1)/2`, with the would-be
/// carry-out bit folded into the operands instead of left idle. This
/// mirrors the structure of the original construction while letting the
/// caller pick the total qubit budget as in the paper's benchmark table.
/// `tests::rca_touches_every_qubit` pins the no-idle-qubit property across
/// `n = 4..=12`.
///
/// # Panics
///
/// Panics when `n < 4` (the smallest adder needs carry-in, one bit of each
/// operand and a carry-out).
pub fn rca(n: usize) -> Circuit {
    assert!(n >= 4, "the ripple-carry adder needs at least 4 qubits");
    // ⌊(n-1)/2⌋ operand bits: equal to (n-2)/2 for even n (carry-out takes
    // the last qubit) and one more than the old (n-2)/2 sizing for odd n,
    // which used to leave the top two qubits of e.g. rca(5) untouched.
    let bits = (n - 1) / 2;
    let carry_in = 0usize;
    let a = |i: usize| 1 + 2 * i; // operand A bit i
    let b = |i: usize| 2 + 2 * i; // operand B bit i
    let carry_out = if n.is_multiple_of(2) { Some(n - 1) } else { None };

    let mut c = Circuit::new(n);
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.push(Gate::Cnot { control: z, target: y });
        c.push(Gate::Cnot { control: z, target: x });
        c.push(Gate::Toffoli { a: x, b: y, target: z });
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.push(Gate::Toffoli { a: x, b: y, target: z });
        c.push(Gate::Cnot { control: z, target: x });
        c.push(Gate::Cnot { control: x, target: y });
    };

    // MAJ ripple up.
    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    // Carry out.
    if let Some(co) = carry_out {
        if bits > 0 {
            c.push(Gate::Cnot { control: a(bits - 1), target: co });
        }
    }
    // UMA ripple down.
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    c
}

/// VQE with the commonly used full-entanglement ansatz: alternating layers
/// of parameterized single-qubit rotations and all-to-all CZ entanglers,
/// followed by a final rotation layer.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn vqe(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "VQE needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = 1;
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push(Gate::Ry { qubit: q, theta: rng.gen_range(0.0..PI) });
            c.push(Gate::Rz { qubit: q, theta: rng.gen_range(0.0..PI) });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                c.push(Gate::Cz { a: i, b: j });
            }
        }
    }
    for q in 0..n {
        c.push(Gate::Ry { qubit: q, theta: rng.gen_range(0.0..PI) });
        c.push(Gate::Rz { qubit: q, theta: rng.gen_range(0.0..PI) });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_is_deterministic_per_seed() {
        let a = qaoa(6, 7);
        let b = qaoa(6, 7);
        let c = qaoa(6, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.n_qubits(), 6);
    }

    #[test]
    fn qaoa_edge_count_is_half_of_possible() {
        let n = 8;
        let c = qaoa(n, 1);
        // Each edge contributes exactly 2 CNOTs (and no other CNOTs exist).
        let cnots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count();
        assert_eq!(cnots, 2 * (n * (n - 1) / 2 / 2));
    }

    /// The documented contract: `max(1, ⌊possible/2⌋)` *distinct* edges,
    /// asserted across `n = 2..=12` — covering the `n = 2` floor case and
    /// odd possible-edge totals (3 at `n = 3`, 15 at `n = 6`, 21 at
    /// `n = 7`), not just one even case.
    #[test]
    fn qaoa_edge_count_contract() {
        for n in 2..=12usize {
            for seed in [0u64, 1, 7] {
                let c = qaoa(n, seed);
                let expected = (n * (n - 1) / 2 / 2).max(1);
                // Cost structure per edge: CNOT(i,j) · Rz(j) · CNOT(i,j).
                let cnot_pairs: Vec<(usize, usize)> = c
                    .gates()
                    .iter()
                    .filter_map(|g| match *g {
                        Gate::Cnot { control, target } => Some((control, target)),
                        _ => None,
                    })
                    .collect();
                assert_eq!(
                    cnot_pairs.len(),
                    2 * expected,
                    "n={n} seed={seed}: CNOT count off the contract"
                );
                let rzs = c.gates().iter().filter(|g| matches!(g, Gate::Rz { .. })).count();
                assert_eq!(rzs, expected, "n={n} seed={seed}: one Rz per edge");
                // Edges are distinct simple edges with i < j: the two CNOTs
                // of one edge agree, and no edge repeats.
                let mut edges: Vec<(usize, usize)> = cnot_pairs.chunks(2).map(|p| p[0]).collect();
                assert!(cnot_pairs.chunks(2).all(|p| p[0] == p[1]), "n={n}: edge CNOTs pair up");
                assert!(edges.iter().all(|&(i, j)| i < j && j < n), "n={n}: simple edges");
                edges.sort_unstable();
                edges.dedup();
                assert_eq!(edges.len(), expected, "n={n} seed={seed}: edges are distinct");
            }
        }
    }

    #[test]
    fn qft_gate_count() {
        let n = 5;
        let c = qft(n);
        let h = c.gates().iter().filter(|g| matches!(g, Gate::H { .. })).count();
        let cp = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cphase { .. }))
            .count();
        assert_eq!(h, n);
        assert_eq!(cp, n * (n - 1) / 2);
    }

    #[test]
    fn rca_structure() {
        let c = rca(6); // 2-bit adder with carry-out
        assert_eq!(c.n_qubits(), 6);
        let toffolis = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Toffoli { .. }))
            .count();
        // 2 MAJ + 2 UMA → 4 Toffolis.
        assert_eq!(toffolis, 4);
    }

    #[test]
    fn vqe_full_entanglement_has_all_pairs() {
        let n = 5;
        let c = vqe(n, 3);
        let czs = c.gates().iter().filter(|g| matches!(g, Gate::Cz { .. })).count();
        assert_eq!(czs, n * (n - 1) / 2);
    }

    #[test]
    fn benchmark_enum_dispatch() {
        for b in Benchmark::all() {
            let c = b.circuit(4, 11);
            assert_eq!(c.n_qubits(), 4);
            assert!(!c.is_empty());
            assert!(!b.name().is_empty());
            assert_eq!(b.to_string(), b.name());
        }
    }

    /// The odd-`n` regression: `rca(5)` used to size its operands as
    /// `(n-2)/2 = 1` bit and leave qubits 3–4 completely idle. Every qubit
    /// of the budget must now appear in some gate, for both parities.
    #[test]
    fn rca_touches_every_qubit() {
        for n in 4..=12usize {
            let c = rca(n);
            let mut touched = vec![false; n];
            for gate in c.gates() {
                for q in gate.qubits() {
                    touched[q] = true;
                }
            }
            let idle: Vec<usize> =
                (0..n).filter(|&q| !touched[q]).collect();
            assert!(idle.is_empty(), "rca({n}) leaves qubits {idle:?} idle");
        }
    }

    /// Odd-`n` adders use ⌊(n-1)/2⌋-bit operands and no carry-out; even-`n`
    /// circuits keep their pre-fix shape (one fewer operand bit plus the
    /// carry-out CNOT).
    #[test]
    fn rca_operand_sizing_per_parity() {
        // rca(5): 2-bit operands → 2 MAJ + 2 UMA = 4 Toffolis, no carry-out.
        let odd = rca(5);
        let toffolis =
            odd.gates().iter().filter(|g| matches!(g, Gate::Toffoli { .. })).count();
        assert_eq!(toffolis, 4);
        // No carry-out on odd n: the top qubit is operand B's high bit,
        // written by the MAJ/UMA ladder rather than a final CNOT target.
        assert!(odd.gates().iter().any(|g| g.qubits().contains(&4)));
        // rca(6) is byte-identical to the pre-fix construction: same
        // operand sizing, carry-out CNOT onto qubit 5 present.
        let even = rca(6);
        let toffolis =
            even.gates().iter().filter(|g| matches!(g, Gate::Toffoli { .. })).count();
        assert_eq!(toffolis, 4);
        assert!(even
            .gates()
            .iter()
            .any(|g| matches!(g, Gate::Cnot { target: 5, .. })));
    }

    #[test]
    #[should_panic(expected = "at least 4 qubits")]
    fn rca_too_small_panics() {
        let _ = rca(3);
    }
}
