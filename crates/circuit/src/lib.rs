//! Quantum circuit front-end for the OnePerc reproduction.
//!
//! The photonic MBQC compiler consumes *program graph states* — graph states
//! plus a measurement pattern — rather than gate-model circuits. This crate
//! provides everything needed to get there:
//!
//! * [`Gate`] / [`Circuit`] — a small circuit IR whose universal gate set is
//!   `{J(α), CZ}`, with convenience gates (`H`, `Rz`, `CNOT`, `Toffoli`, …)
//!   that lower onto that set structurally.
//! * [`benchmarks`] — generators for the benchmark families evaluated in the
//!   paper: QAOA max-cut on random graphs, the quantum Fourier transform,
//!   the Cuccaro ripple-carry adder and a full-entanglement VQE ansatz.
//! * [`ProgramGraph`] — the measurement-pattern translation of a circuit
//!   (Fig. 3 of the paper): `J(α)` gates become equatorial measurements on a
//!   wire of graph-state qubits, `CZ` gates become edges.
//! * [`DependencyDag`] — the flow-induced partial order among graph-state
//!   qubits used by the offline mapper for dynamic scheduling.
//! * [`StableHasher`] / [`Circuit::structural_hash`] — process-independent
//!   64-bit structural hashing, the addressing half of the service layer's
//!   content-addressed compiled-program cache.
//!
//! # Example
//!
//! ```
//! use oneperc_circuit::{benchmarks, ProgramGraph};
//!
//! let circuit = benchmarks::qft(3);
//! let program = ProgramGraph::from_circuit(&circuit);
//! assert!(program.node_count() > 3);
//! assert_eq!(program.outputs().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod circuit;
mod dag;
mod gate;
mod hash;
mod program;

pub use circuit::Circuit;
pub use dag::DependencyDag;
pub use gate::Gate;
pub use hash::StableHasher;
pub use program::{ProgramGraph, ProgramNode};
