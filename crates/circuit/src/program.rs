//! Translation from circuits to program graph states (measurement patterns).
//!
//! Following the standard MBQC translation (Fig. 3 of the paper), every
//! circuit qubit becomes a *wire* of graph-state qubits: a `J(α)` gate
//! appends a fresh qubit to the wire, entangles it with the wire's current
//! end and marks the old end for an equatorial measurement `E(α)`; a `CZ`
//! gate becomes an edge between the current ends of the two wires. The
//! qubits remaining at the ends of the wires when the circuit finishes are
//! the output qubits.

use graphstate::{GraphState, MeasBasis, VertexId};

use crate::circuit::Circuit;
use crate::dag::DependencyDag;
use crate::gate::Gate;

/// Role and measurement assignment of one node of a program graph state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramNode {
    /// The circuit wire (logical qubit) this node belongs to.
    pub wire: usize,
    /// Position of the node along its wire (0 = circuit input).
    pub wire_index: usize,
    /// Measurement basis driving the computation. `None` for output qubits,
    /// which are left unmeasured (or read out in whatever basis the
    /// application needs).
    pub basis: Option<MeasBasis>,
}

impl ProgramNode {
    /// Returns `true` when this node is an output (unmeasured) qubit.
    pub fn is_output(&self) -> bool {
        self.basis.is_none()
    }
}

/// A program graph state: the graph structure required by the program plus
/// the measurement pattern on its qubits.
///
/// # Example
///
/// ```
/// use oneperc_circuit::{Circuit, Gate, ProgramGraph};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H { qubit: 0 });
/// c.push(Gate::Cnot { control: 0, target: 1 });
/// let pg = ProgramGraph::from_circuit(&c);
/// assert_eq!(pg.outputs().len(), 2);
/// assert!(pg.edge_count() >= pg.outputs().len());
/// ```
#[derive(Debug, Clone)]
pub struct ProgramGraph {
    graph: GraphState,
    nodes: Vec<ProgramNode>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
    creation_order: Vec<VertexId>,
    n_wires: usize,
}

impl ProgramGraph {
    /// Builds the program graph state of a circuit. The circuit is lowered
    /// to the `{J, CZ}` set first.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let lowered = circuit.lowered();
        let n = lowered.n_qubits();
        let mut graph = GraphState::new();
        let mut nodes: Vec<ProgramNode> = Vec::new();
        let mut creation_order: Vec<VertexId> = Vec::new();

        // Current end of each wire and its position along the wire.
        let mut current: Vec<VertexId> = Vec::with_capacity(n);
        let mut wire_len: Vec<usize> = vec![0; n];
        let mut inputs = Vec::with_capacity(n);
        for wire in 0..n {
            let v = graph.add_vertex();
            nodes.push(ProgramNode { wire, wire_index: 0, basis: None });
            creation_order.push(v);
            current.push(v);
            inputs.push(v);
        }

        for gate in lowered.gates() {
            match *gate {
                Gate::J { qubit, alpha } => {
                    let old = current[qubit];
                    let fresh = graph.add_vertex();
                    wire_len[qubit] += 1;
                    nodes.push(ProgramNode {
                        wire: qubit,
                        wire_index: wire_len[qubit],
                        basis: None,
                    });
                    creation_order.push(fresh);
                    graph.add_edge(old, fresh);
                    // The consumed wire end is measured in E(α).
                    nodes[old].basis = Some(MeasBasis::equatorial(alpha));
                    current[qubit] = fresh;
                }
                Gate::Cz { a, b } => {
                    graph.add_edge(current[a], current[b]);
                }
                ref other => {
                    unreachable!("lowered circuit contains non-primitive gate {other}")
                }
            }
        }

        let outputs = current;
        ProgramGraph {
            graph,
            nodes,
            inputs,
            outputs,
            creation_order,
            n_wires: n,
        }
    }

    /// The underlying graph structure.
    pub fn graph(&self) -> &GraphState {
        &self.graph
    }

    /// Number of graph-state qubits (nodes).
    pub fn node_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of graph-state edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of circuit wires (logical qubits).
    pub fn n_wires(&self) -> usize {
        self.n_wires
    }

    /// Metadata of a node.
    pub fn node(&self, v: VertexId) -> &ProgramNode {
        &self.nodes[v]
    }

    /// The circuit-input qubits (one per wire).
    pub fn inputs(&self) -> &[VertexId] {
        &self.inputs
    }

    /// The circuit-output qubits (one per wire, unmeasured).
    pub fn outputs(&self) -> &[VertexId] {
        &self.outputs
    }

    /// All node ids in creation order (wire inputs first, then in gate
    /// order).
    pub fn creation_order(&self) -> &[VertexId] {
        &self.creation_order
    }

    /// Builds the flow-induced dependency DAG over the program nodes, used
    /// by the offline mapper for dynamic scheduling (Section 6.2).
    ///
    /// The causal flow of the wire construction maps every measured node to
    /// its successor on the same wire; the induced partial order requires a
    /// node to be mapped after its wire predecessor and after the wire
    /// predecessors of all of its graph neighbors.
    pub fn dependency_dag(&self) -> DependencyDag {
        let mut dag = DependencyDag::new(self.graph.id_bound());
        // Wire order: predecessor before successor.
        let mut prev_on_wire: Vec<Option<VertexId>> = vec![None; self.n_wires];
        for &v in &self.creation_order {
            let wire = self.nodes[v].wire;
            if let Some(p) = prev_on_wire[wire] {
                dag.add_dependency(p, v);
            }
            prev_on_wire[wire] = Some(v);
        }
        // Neighbor order: a node's wire predecessor must be mapped before
        // any neighbor of the node is completed; conservatively we require
        // the predecessor of v before every neighbor of v that was created
        // later than it.
        for &v in &self.creation_order {
            if let Some(nbrs) = self.graph.neighbors(v) {
                let wire = self.nodes[v].wire;
                let wire_idx = self.nodes[v].wire_index;
                for &u in nbrs {
                    // Cross-wire CZ edges induce an ordering from the earlier
                    // created node to the later one so that the front layer
                    // only exposes nodes whose entangling partners exist.
                    if self.nodes[u].wire != wire && u < v && self.nodes[u].wire_index <= wire_idx
                    {
                        dag.add_dependency(u, v);
                    }
                }
            }
        }
        dag
    }

    /// Convenience: the number of measured (non-output) nodes.
    pub fn measured_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_output()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn single_j_gate_makes_two_node_wire() {
        let mut c = Circuit::new(1);
        c.push(Gate::J { qubit: 0, alpha: 0.4 });
        let pg = ProgramGraph::from_circuit(&c);
        assert_eq!(pg.node_count(), 2);
        assert_eq!(pg.edge_count(), 1);
        assert_eq!(pg.inputs().len(), 1);
        assert_eq!(pg.outputs().len(), 1);
        let input = pg.inputs()[0];
        let output = pg.outputs()[0];
        assert!(pg.node(input).basis.is_some());
        assert!(pg.node(output).is_output());
        assert!((pg.node(input).basis.unwrap().equatorial_angle().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cz_gate_adds_edge_between_wire_ends() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cz { a: 0, b: 1 });
        let pg = ProgramGraph::from_circuit(&c);
        assert_eq!(pg.node_count(), 2);
        assert_eq!(pg.edge_count(), 1);
        assert!(pg.graph().has_edge(pg.outputs()[0], pg.outputs()[1]));
    }

    #[test]
    fn translation_matches_fig3_shape() {
        // Fig. 3: J(α), J(β) on two wires joined by CZ gates produce a
        // ladder-like graph; check node/edge counts for a tiny instance.
        let mut c = Circuit::new(2);
        c.push(Gate::J { qubit: 0, alpha: 0.1 });
        c.push(Gate::J { qubit: 1, alpha: 0.2 });
        c.push(Gate::Cz { a: 0, b: 1 });
        c.push(Gate::J { qubit: 0, alpha: 0.3 });
        let pg = ProgramGraph::from_circuit(&c);
        // 2 inputs + 3 J-created nodes.
        assert_eq!(pg.node_count(), 5);
        // 3 wire edges + 1 CZ edge.
        assert_eq!(pg.edge_count(), 4);
        assert_eq!(pg.measured_count(), 3);
    }

    #[test]
    fn output_nodes_are_unmeasured_and_per_wire() {
        let c = benchmarks::qft(4);
        let pg = ProgramGraph::from_circuit(&c);
        assert_eq!(pg.outputs().len(), 4);
        for (wire, &o) in pg.outputs().iter().enumerate() {
            assert!(pg.node(o).is_output());
            assert_eq!(pg.node(o).wire, wire);
        }
        assert_eq!(pg.measured_count(), pg.node_count() - 4);
    }

    #[test]
    fn dependency_dag_is_acyclic_and_covers_all_nodes() {
        let c = benchmarks::qaoa(5, 2);
        let pg = ProgramGraph::from_circuit(&c);
        let dag = pg.dependency_dag();
        let order = dag.topological_order().expect("program DAG must be acyclic");
        assert_eq!(order.len(), pg.node_count());
    }

    #[test]
    fn wire_predecessors_precede_successors_in_dag() {
        let c = benchmarks::vqe(3, 9);
        let pg = ProgramGraph::from_circuit(&c);
        let dag = pg.dependency_dag();
        let order = dag.topological_order().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in pg.creation_order() {
            let node = pg.node(v);
            if node.wire_index > 0 {
                // Find the predecessor on the wire.
                let pred = pg
                    .creation_order()
                    .iter()
                    .copied()
                    .find(|&u| {
                        pg.node(u).wire == node.wire && pg.node(u).wire_index + 1 == node.wire_index
                    })
                    .unwrap();
                assert!(pos[&pred] < pos[&v]);
            }
        }
    }

    #[test]
    fn benchmarks_translate_without_panic() {
        for b in benchmarks::Benchmark::all() {
            let c = b.circuit(4, 5);
            let pg = ProgramGraph::from_circuit(&c);
            assert!(pg.node_count() > 4);
            assert_eq!(pg.n_wires(), 4);
        }
    }
}
