//! Stable structural hashing for content-addressed compilation caches.
//!
//! OnePerc's offline pass is a pure function of `(circuit, compiler
//! configuration)`; only the online pass consumes randomness. A service
//! sweeping many seeds over one circuit can therefore reuse the compiled
//! artifact across every call — *if* it can address it by content. This
//! module provides the addressing half: a 64-bit hash that is **stable
//! across processes, platforms and runs** (unlike `std::hash`, whose
//! `RandomState` is seeded per process and whose `Hasher` output is
//! explicitly unspecified across releases).
//!
//! [`StableHasher`] is FNV-1a over a canonical byte encoding; the circuit
//! side of the key is [`Circuit::structural_hash`](crate::Circuit::structural_hash),
//! which digests the gate list in application order — the linearization of
//! the circuit's gate DAG, so structurally equal circuits (same gates, same
//! qubits, same angles, same order) collide exactly and everything else
//! practically never does. The compiler crate combines it with a
//! configuration fingerprint built on the same hasher.

/// A stable 64-bit streaming hasher (FNV-1a).
///
/// Deliberately *not* an implementation of `std::hash::Hasher`: values fed
/// to it go through the explicit `write_*` methods below so the encoding is
/// pinned by this crate, not by whatever `#[derive(Hash)]` happens to emit
/// in a given std release.
///
/// # Example
///
/// ```
/// use oneperc_circuit::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_u64(7);
/// a.write_f64(0.75);
/// let mut b = StableHasher::new();
/// b.write_u64(7);
/// b.write_f64(0.75);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher in the FNV-1a offset-basis state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` so 32- and 64-bit targets agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern. `-0.0` and `0.0` hash differently —
    /// for cache addressing a spurious *miss* is merely a recompile, while
    /// any value normalization would have to be replicated forever.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a one-byte tag (enum discriminants, booleans).
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, Circuit, Gate};

    #[test]
    fn identical_streams_agree_and_order_matters() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn widths_are_not_conflated() {
        // A tag byte and a u64 with the same leading byte must not collide
        // by construction of the explicit encodings.
        let mut a = StableHasher::new();
        a.write_tag(5);
        let mut b = StableHasher::new();
        b.write_u64(5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn golden_value_pins_the_algorithm() {
        // The whole point of the hasher is stability across builds: if this
        // constant moves, every persisted cache key in the world would be
        // silently invalidated. Change it only with a cache-format bump.
        let mut h = StableHasher::new();
        h.write_bytes(b"oneperc");
        assert_eq!(h.finish(), 0x9219_061a_f563_4967);
    }

    #[test]
    fn circuit_hash_is_deterministic_across_instances() {
        let a = benchmarks::qaoa(4, 7).structural_hash();
        let b = benchmarks::qaoa(4, 7).structural_hash();
        assert_eq!(a, b);
    }

    #[test]
    fn circuit_hash_separates_structures() {
        let base = benchmarks::qaoa(4, 7).structural_hash();
        assert_ne!(base, benchmarks::qaoa(4, 8).structural_hash(), "different instance");
        assert_ne!(base, benchmarks::qft(4).structural_hash(), "different family");

        // Angle perturbation on a single gate.
        let mut c1 = Circuit::new(2);
        c1.push(Gate::J { qubit: 0, alpha: 0.5 });
        let mut c2 = Circuit::new(2);
        c2.push(Gate::J { qubit: 0, alpha: 0.5 + 1e-12 });
        assert_ne!(c1.structural_hash(), c2.structural_hash());

        // Gate order (the DAG linearization) is part of the structure.
        let mut ab = Circuit::new(2);
        ab.push(Gate::H { qubit: 0 });
        ab.push(Gate::X { qubit: 1 });
        let mut ba = Circuit::new(2);
        ba.push(Gate::X { qubit: 1 });
        ba.push(Gate::H { qubit: 0 });
        assert_ne!(ab.structural_hash(), ba.structural_hash());

        // Qubit count matters even with an identical gate list.
        let mut narrow = Circuit::new(2);
        narrow.push(Gate::H { qubit: 0 });
        let mut wide = Circuit::new(3);
        wide.push(Gate::H { qubit: 0 });
        assert_ne!(narrow.structural_hash(), wide.structural_hash());
    }

    #[test]
    fn empty_circuits_hash_by_width() {
        assert_ne!(Circuit::new(1).structural_hash(), Circuit::new(2).structural_hash());
        assert_eq!(Circuit::new(3).structural_hash(), Circuit::new(3).structural_hash());
    }
}
