//! The [`Circuit`] container and its lowering to the `{J, CZ}` set.

use std::fmt;

use crate::gate::Gate;
use crate::hash::StableHasher;

/// A gate-model quantum circuit.
///
/// Gates are stored in application order. A circuit can contain convenience
/// gates; [`Circuit::lowered`] rewrites everything into the `{J(α), CZ}`
/// universal set expected by the MBQC translation.
///
/// # Example
///
/// ```
/// use oneperc_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H { qubit: 0 });
/// c.push(Gate::Cnot { control: 0, target: 1 });
/// let lowered = c.lowered();
/// assert!(lowered.gates().iter().all(|g| g.is_primitive()));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit { n_qubits, gates: Vec::new() }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gate list in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates currently in the circuit.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit index `>= n_qubits`.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} references qubit {q} but the circuit has {} qubits",
                self.n_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends every gate from an iterator.
    pub fn extend<I: IntoIterator<Item = Gate>>(&mut self, gates: I) {
        for g in gates {
            self.push(g);
        }
    }

    /// Returns an equivalent circuit containing only `{J(α), CZ}` gates.
    pub fn lowered(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for g in &self.gates {
            out.extend(g.lower());
        }
        out
    }

    /// Counts the two-qubit (`CZ`) gates in the lowered form — a rough
    /// measure of the entangling structure of the program.
    pub fn cz_count(&self) -> usize {
        self.lowered()
            .gates
            .iter()
            .filter(|g| matches!(g, Gate::Cz { .. }))
            .count()
    }

    /// Counts the `J` gates in the lowered form.
    pub fn j_count(&self) -> usize {
        self.lowered()
            .gates
            .iter()
            .filter(|g| matches!(g, Gate::J { .. }))
            .count()
    }

    /// A stable 64-bit structural hash of the circuit: qubit count plus the
    /// gate list in application order (the linearization of the gate DAG),
    /// each gate encoded as a discriminant tag, its qubit operands and its
    /// angle bit patterns.
    ///
    /// Two circuits hash equal exactly when they are structurally equal, so
    /// the hash can address content — most importantly the compiled-program
    /// cache of the service layer, where the offline pass is a pure
    /// function of `(circuit, configuration)`. The encoding is pinned by
    /// [`StableHasher`]: the value is reproducible across processes,
    /// platforms and compiler releases, unlike `std::hash`.
    pub fn structural_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        // Version tag of the encoding itself, bumped on any format change.
        h.write_tag(1);
        h.write_usize(self.n_qubits);
        h.write_usize(self.gates.len());
        for gate in &self.gates {
            gate.write_structural(&mut h);
        }
        h.finish()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits, {} gates", self.n_qubits, self.gates.len())?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut c = Circuit::new(3);
        c.push(Gate::H { qubit: 0 });
        c.push(Gate::Cnot { control: 0, target: 2 });
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.cz_count(), 1);
        assert!(c.j_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::H { qubit: 5 });
    }

    #[test]
    fn lowered_only_primitives() {
        let mut c = Circuit::new(3);
        c.push(Gate::Toffoli { a: 0, b: 1, target: 2 });
        c.push(Gate::Swap { a: 0, b: 2 });
        let l = c.lowered();
        assert!(l.gates().iter().all(Gate::is_primitive));
        assert_eq!(l.n_qubits(), 3);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(1);
        c.push(Gate::H { qubit: 0 });
        let s = c.to_string();
        assert!(s.contains("circuit on 1 qubits"));
        assert!(s.contains("H q0"));
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        assert!(c.is_empty());
        assert_eq!(c.cz_count(), 0);
        assert_eq!(c.lowered().len(), 0);
    }
}
