//! Dependency DAG over program-graph nodes and its dynamic scheduler.
//!
//! OnePerc's offline pass replaces OneQ's static partition with *dynamic
//! scheduling*: the dependency relations among graph-state qubits are
//! represented as a directed acyclic graph whose *front layer* (nodes with
//! all predecessors already consumed) is updated as the mapping proceeds
//! (Section 6.2). [`DependencyDag`] stores the relation; [`DagScheduler`]
//! maintains the front layer.

use std::collections::HashSet;

/// A directed acyclic dependency graph over the node ids `0..n`.
#[derive(Debug, Clone, Default)]
pub struct DependencyDag {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Creates a DAG over `n` nodes and no dependencies.
    pub fn new(n: usize) -> Self {
        DependencyDag {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Records that `before` must be consumed before `after`. Duplicate
    /// dependencies are ignored.
    ///
    /// # Panics
    ///
    /// Panics when either id is out of range or when `before == after`.
    pub fn add_dependency(&mut self, before: usize, after: usize) {
        assert!(before < self.len() && after < self.len(), "node id out of range");
        assert_ne!(before, after, "a node cannot depend on itself");
        if !self.succs[before].contains(&after) {
            self.succs[before].push(after);
            self.preds[after].push(before);
        }
    }

    /// Direct successors of a node.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.succs[v]
    }

    /// Direct predecessors of a node.
    pub fn predecessors(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Kahn topological order over all nodes, or `None` when the relation
    /// contains a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..self.len()).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == self.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Creates a scheduler that tracks the front layer as nodes are
    /// consumed.
    pub fn scheduler(&self) -> DagScheduler<'_> {
        DagScheduler::new(self)
    }
}

/// Tracks which nodes are ready (all predecessors consumed) as the offline
/// mapper consumes nodes one by one.
///
/// # Example
///
/// ```
/// use oneperc_circuit::DependencyDag;
///
/// let mut dag = DependencyDag::new(3);
/// dag.add_dependency(0, 1);
/// dag.add_dependency(1, 2);
/// let mut sched = dag.scheduler();
/// assert_eq!(sched.front().to_vec(), vec![0]);
/// sched.consume(0);
/// assert_eq!(sched.front().to_vec(), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct DagScheduler<'a> {
    dag: &'a DependencyDag,
    remaining_preds: Vec<usize>,
    consumed: HashSet<usize>,
    front: Vec<usize>,
}

impl<'a> DagScheduler<'a> {
    fn new(dag: &'a DependencyDag) -> Self {
        let remaining_preds: Vec<usize> = dag.preds.iter().map(Vec::len).collect();
        let mut front: Vec<usize> = (0..dag.len()).filter(|&v| remaining_preds[v] == 0).collect();
        front.sort_unstable();
        DagScheduler {
            dag,
            remaining_preds,
            consumed: HashSet::new(),
            front,
        }
    }

    /// Nodes that are currently ready to be consumed, in increasing id
    /// order.
    pub fn front(&self) -> &[usize] {
        &self.front
    }

    /// Returns `true` once every node has been consumed.
    pub fn is_done(&self) -> bool {
        self.consumed.len() == self.dag.len()
    }

    /// Number of nodes consumed so far.
    pub fn consumed_count(&self) -> usize {
        self.consumed.len()
    }

    /// Marks `v` as consumed and returns the nodes that became ready as a
    /// result.
    ///
    /// # Panics
    ///
    /// Panics when `v` is not currently in the front layer (consuming a node
    /// whose dependencies are unmet would violate the partial order).
    pub fn consume(&mut self, v: usize) -> Vec<usize> {
        let pos = self
            .front
            .iter()
            .position(|&f| f == v)
            .expect("node must be in the front layer to be consumed");
        self.front.remove(pos);
        self.consumed.insert(v);
        let mut newly_ready = Vec::new();
        for &s in &self.dag.succs[v] {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                newly_ready.push(s);
            }
        }
        newly_ready.sort_unstable();
        for &s in &newly_ready {
            self.front.push(s);
        }
        self.front.sort_unstable();
        newly_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topological_order_on_chain() {
        let mut dag = DependencyDag::new(4);
        dag.add_dependency(0, 1);
        dag.add_dependency(1, 2);
        dag.add_dependency(2, 3);
        assert_eq!(dag.topological_order().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(dag.edge_count(), 3);
    }

    #[test]
    fn cycle_is_detected() {
        let mut dag = DependencyDag::new(3);
        dag.add_dependency(0, 1);
        dag.add_dependency(1, 2);
        dag.add_dependency(2, 0);
        assert!(dag.topological_order().is_none());
    }

    #[test]
    fn duplicate_dependencies_ignored() {
        let mut dag = DependencyDag::new(2);
        dag.add_dependency(0, 1);
        dag.add_dependency(0, 1);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn scheduler_tracks_front_layer() {
        // Diamond: 0 -> {1,2} -> 3.
        let mut dag = DependencyDag::new(4);
        dag.add_dependency(0, 1);
        dag.add_dependency(0, 2);
        dag.add_dependency(1, 3);
        dag.add_dependency(2, 3);
        let mut sched = dag.scheduler();
        assert_eq!(sched.front(), &[0]);
        let ready = sched.consume(0);
        assert_eq!(ready, vec![1, 2]);
        assert_eq!(sched.front(), &[1, 2]);
        sched.consume(1);
        assert!(sched.front().contains(&2));
        assert!(!sched.front().contains(&3));
        sched.consume(2);
        assert_eq!(sched.front(), &[3]);
        sched.consume(3);
        assert!(sched.is_done());
        assert_eq!(sched.consumed_count(), 4);
    }

    #[test]
    #[should_panic(expected = "front layer")]
    fn consuming_unready_node_panics() {
        let mut dag = DependencyDag::new(2);
        dag.add_dependency(0, 1);
        let mut sched = dag.scheduler();
        sched.consume(1);
    }

    #[test]
    fn empty_dag() {
        let dag = DependencyDag::new(0);
        assert!(dag.is_empty());
        assert_eq!(dag.topological_order().unwrap(), Vec::<usize>::new());
        assert!(dag.scheduler().is_done());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dependency_panics() {
        let mut dag = DependencyDag::new(2);
        dag.add_dependency(0, 5);
    }
}
