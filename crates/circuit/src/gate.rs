//! Gate definitions and lowering into the `{J(α), CZ}` universal set.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

use crate::hash::StableHasher;

/// A quantum gate in the circuit IR.
///
/// The only gates the MBQC translation understands are [`Gate::J`] and
/// [`Gate::Cz`]; everything else is convenience syntax that
/// [`Gate::lower`] expands into that set. Angles are in radians. Gate order
/// in a circuit is application order (the first gate of the list acts
/// first).
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// The one-qubit gate `J(α) = H · Rz(α)` — the native single-qubit gate
    /// of the MBQC translation.
    J {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle `α` in radians.
        alpha: f64,
    },
    /// Controlled-Z between two qubits (symmetric).
    Cz {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Hadamard.
    H {
        /// Target qubit.
        qubit: usize,
    },
    /// Pauli X.
    X {
        /// Target qubit.
        qubit: usize,
    },
    /// Pauli Z.
    Z {
        /// Target qubit.
        qubit: usize,
    },
    /// Phase gate `S = Rz(π/2)` (up to global phase).
    S {
        /// Target qubit.
        qubit: usize,
    },
    /// `T = Rz(π/4)` (up to global phase).
    T {
        /// Target qubit.
        qubit: usize,
    },
    /// `T† = Rz(-π/4)` (up to global phase).
    Tdg {
        /// Target qubit.
        qubit: usize,
    },
    /// Z-axis rotation.
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Angle in radians.
        theta: f64,
    },
    /// X-axis rotation.
    Rx {
        /// Target qubit.
        qubit: usize,
        /// Angle in radians.
        theta: f64,
    },
    /// Y-axis rotation.
    Ry {
        /// Target qubit.
        qubit: usize,
        /// Angle in radians.
        theta: f64,
    },
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled phase rotation (diagonal `diag(1,1,1,e^{iθ})`).
    Cphase {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Phase angle in radians.
        theta: f64,
    },
    /// Swap of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Toffoli (CCX) gate.
    Toffoli {
        /// First control.
        a: usize,
        /// Second control.
        b: usize,
        /// Target qubit.
        target: usize,
    },
}

impl Gate {
    /// The qubits this gate acts on.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::J { qubit, .. }
            | Gate::H { qubit }
            | Gate::X { qubit }
            | Gate::Z { qubit }
            | Gate::S { qubit }
            | Gate::T { qubit }
            | Gate::Tdg { qubit }
            | Gate::Rz { qubit, .. }
            | Gate::Rx { qubit, .. }
            | Gate::Ry { qubit, .. } => vec![qubit],
            Gate::Cz { a, b } | Gate::Swap { a, b } => vec![a, b],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Cphase { control, target, .. } => vec![control, target],
            Gate::Toffoli { a, b, target } => vec![a, b, target],
        }
    }

    /// Returns `true` when the gate is already in the `{J, CZ}` set.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Gate::J { .. } | Gate::Cz { .. })
    }

    /// Feeds this gate's canonical encoding — a discriminant tag, the qubit
    /// operands, the angle bit patterns — into a [`StableHasher`]. Part of
    /// [`Circuit::structural_hash`](crate::Circuit::structural_hash); the
    /// tags are append-only so existing hashes never move.
    pub(crate) fn write_structural(&self, h: &mut StableHasher) {
        match *self {
            Gate::J { qubit, alpha } => {
                h.write_tag(0);
                h.write_usize(qubit);
                h.write_f64(alpha);
            }
            Gate::Cz { a, b } => {
                h.write_tag(1);
                h.write_usize(a);
                h.write_usize(b);
            }
            Gate::H { qubit } => {
                h.write_tag(2);
                h.write_usize(qubit);
            }
            Gate::X { qubit } => {
                h.write_tag(3);
                h.write_usize(qubit);
            }
            Gate::Z { qubit } => {
                h.write_tag(4);
                h.write_usize(qubit);
            }
            Gate::S { qubit } => {
                h.write_tag(5);
                h.write_usize(qubit);
            }
            Gate::T { qubit } => {
                h.write_tag(6);
                h.write_usize(qubit);
            }
            Gate::Tdg { qubit } => {
                h.write_tag(7);
                h.write_usize(qubit);
            }
            Gate::Rz { qubit, theta } => {
                h.write_tag(8);
                h.write_usize(qubit);
                h.write_f64(theta);
            }
            Gate::Rx { qubit, theta } => {
                h.write_tag(9);
                h.write_usize(qubit);
                h.write_f64(theta);
            }
            Gate::Ry { qubit, theta } => {
                h.write_tag(10);
                h.write_usize(qubit);
                h.write_f64(theta);
            }
            Gate::Cnot { control, target } => {
                h.write_tag(11);
                h.write_usize(control);
                h.write_usize(target);
            }
            Gate::Cphase { control, target, theta } => {
                h.write_tag(12);
                h.write_usize(control);
                h.write_usize(target);
                h.write_f64(theta);
            }
            Gate::Swap { a, b } => {
                h.write_tag(13);
                h.write_usize(a);
                h.write_usize(b);
            }
            Gate::Toffoli { a, b, target } => {
                h.write_tag(14);
                h.write_usize(a);
                h.write_usize(b);
                h.write_usize(target);
            }
        }
    }

    /// Lowers the gate into an equivalent sequence over `{J(α), CZ}`
    /// (application order). Primitive gates lower to themselves.
    pub fn lower(&self) -> Vec<Gate> {
        // Helper sequences, all in application order.
        fn rz(q: usize, theta: f64) -> Vec<Gate> {
            vec![Gate::J { qubit: q, alpha: theta }, Gate::J { qubit: q, alpha: 0.0 }]
        }
        fn rx(q: usize, theta: f64) -> Vec<Gate> {
            vec![Gate::J { qubit: q, alpha: 0.0 }, Gate::J { qubit: q, alpha: theta }]
        }
        fn h(q: usize) -> Vec<Gate> {
            vec![Gate::J { qubit: q, alpha: 0.0 }]
        }
        fn cnot(c: usize, t: usize) -> Vec<Gate> {
            let mut out = h(t);
            out.push(Gate::Cz { a: c, b: t });
            out.extend(h(t));
            out
        }
        match *self {
            Gate::J { .. } | Gate::Cz { .. } => vec![self.clone()],
            Gate::H { qubit } => h(qubit),
            Gate::X { qubit } => rx(qubit, PI),
            Gate::Z { qubit } => rz(qubit, PI),
            Gate::S { qubit } => rz(qubit, FRAC_PI_2),
            Gate::T { qubit } => rz(qubit, FRAC_PI_4),
            Gate::Tdg { qubit } => rz(qubit, -FRAC_PI_4),
            Gate::Rz { qubit, theta } => rz(qubit, theta),
            Gate::Rx { qubit, theta } => rx(qubit, theta),
            Gate::Ry { qubit, theta } => {
                // Ry(θ) = Rz(π/2) · Rx(θ) · Rz(-π/2) (application order:
                // Rz(-π/2) first).
                let mut out = rz(qubit, -FRAC_PI_2);
                out.extend(rx(qubit, theta));
                out.extend(rz(qubit, FRAC_PI_2));
                out
            }
            Gate::Cnot { control, target } => cnot(control, target),
            Gate::Cphase { control, target, theta } => {
                // Controlled-phase(θ) up to global phase:
                // Rz(θ/2) on both, CNOT, Rz(-θ/2) on target, CNOT.
                let mut out = rz(control, theta / 2.0);
                out.extend(rz(target, theta / 2.0));
                out.extend(cnot(control, target));
                out.extend(rz(target, -theta / 2.0));
                out.extend(cnot(control, target));
                out
            }
            Gate::Swap { a, b } => {
                let mut out = cnot(a, b);
                out.extend(cnot(b, a));
                out.extend(cnot(a, b));
                out
            }
            Gate::Toffoli { a, b, target } => {
                // Standard 6-CNOT, 7-T decomposition.
                let seq = [
                    Gate::H { qubit: target },
                    Gate::Cnot { control: b, target },
                    Gate::Tdg { qubit: target },
                    Gate::Cnot { control: a, target },
                    Gate::T { qubit: target },
                    Gate::Cnot { control: b, target },
                    Gate::Tdg { qubit: target },
                    Gate::Cnot { control: a, target },
                    Gate::T { qubit: b },
                    Gate::T { qubit: target },
                    Gate::H { qubit: target },
                    Gate::Cnot { control: a, target: b },
                    Gate::T { qubit: a },
                    Gate::Tdg { qubit: b },
                    Gate::Cnot { control: a, target: b },
                ];
                seq.into_iter().flat_map(|g| g.lower()).collect()
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::J { qubit, alpha } => write!(f, "J({alpha:.3}) q{qubit}"),
            Gate::Cz { a, b } => write!(f, "CZ q{a}, q{b}"),
            Gate::H { qubit } => write!(f, "H q{qubit}"),
            Gate::X { qubit } => write!(f, "X q{qubit}"),
            Gate::Z { qubit } => write!(f, "Z q{qubit}"),
            Gate::S { qubit } => write!(f, "S q{qubit}"),
            Gate::T { qubit } => write!(f, "T q{qubit}"),
            Gate::Tdg { qubit } => write!(f, "Tdg q{qubit}"),
            Gate::Rz { qubit, theta } => write!(f, "Rz({theta:.3}) q{qubit}"),
            Gate::Rx { qubit, theta } => write!(f, "Rx({theta:.3}) q{qubit}"),
            Gate::Ry { qubit, theta } => write!(f, "Ry({theta:.3}) q{qubit}"),
            Gate::Cnot { control, target } => write!(f, "CNOT q{control}, q{target}"),
            Gate::Cphase { control, target, theta } => {
                write!(f, "CP({theta:.3}) q{control}, q{target}")
            }
            Gate::Swap { a, b } => write!(f, "SWAP q{a}, q{b}"),
            Gate::Toffoli { a, b, target } => write!(f, "CCX q{a}, q{b}, q{target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_gates_lower_to_themselves() {
        let j = Gate::J { qubit: 0, alpha: 1.0 };
        assert_eq!(j.lower(), vec![j.clone()]);
        let cz = Gate::Cz { a: 0, b: 1 };
        assert_eq!(cz.lower(), vec![cz.clone()]);
        assert!(j.is_primitive());
        assert!(cz.is_primitive());
        assert!(!Gate::H { qubit: 0 }.is_primitive());
    }

    #[test]
    fn lowering_only_produces_primitives() {
        let gates = vec![
            Gate::H { qubit: 0 },
            Gate::X { qubit: 1 },
            Gate::Ry { qubit: 0, theta: 0.3 },
            Gate::Cnot { control: 0, target: 1 },
            Gate::Cphase { control: 0, target: 1, theta: 0.5 },
            Gate::Swap { a: 0, b: 1 },
            Gate::Toffoli { a: 0, b: 1, target: 2 },
        ];
        for g in gates {
            for p in g.lower() {
                assert!(p.is_primitive(), "lowering of {g} produced {p}");
            }
        }
    }

    #[test]
    fn lowering_acts_on_expected_qubits() {
        let g = Gate::Cnot { control: 3, target: 7 };
        let lowered = g.lower();
        let mut touched: Vec<usize> = lowered.iter().flat_map(Gate::qubits).collect();
        touched.sort_unstable();
        touched.dedup();
        assert_eq!(touched, vec![3, 7]);
    }

    #[test]
    fn toffoli_lowering_has_expected_scale() {
        let lowered = Gate::Toffoli { a: 0, b: 1, target: 2 }.lower();
        // 6 CNOTs → 6 CZ, plus single-qubit J chains; sanity-check the CZ count.
        let czs = lowered.iter().filter(|g| matches!(g, Gate::Cz { .. })).count();
        assert_eq!(czs, 6);
    }

    #[test]
    fn qubits_helper() {
        assert_eq!(Gate::Toffoli { a: 1, b: 2, target: 3 }.qubits(), vec![1, 2, 3]);
        assert_eq!(Gate::Rz { qubit: 5, theta: 0.1 }.qubits(), vec![5]);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        assert_eq!(Gate::Cz { a: 1, b: 2 }.to_string(), "CZ q1, q2");
        assert!(Gate::J { qubit: 0, alpha: 0.5 }.to_string().starts_with("J(0.500)"));
    }
}
