//! Head-to-head comparison of OnePerc against the OneQ repeat-until-success
//! baseline on the same benchmark, at the hyper-advanced (0.90) and
//! practical (0.75) fusion success probabilities — a miniature Table 2.
//!
//! Run with `cargo run --release --example compare_with_oneq`.

use oneperc_suite::circuit::benchmarks::Benchmark;
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::oneq::{OneqCompiler, OneqConfig};

fn main() {
    let qubits = 4;
    let seed = 7;
    let cap = 200_000;

    println!(
        "{:<6} {:<10} {:>12} {:>12} {:>12}",
        "p", "benchmark", "OneQ #RSL", "OnePerc#RSL", "speedup"
    );
    for p in [0.90, 0.75] {
        for bench in Benchmark::all() {
            let circuit = bench.circuit(qubits, seed);

            // Baseline: OneQ plans assuming fusions always succeed and
            // retries layers (or the whole program) on failure.
            let baseline = OneqCompiler::new(
                OneqConfig::new(2 * qubits, p, seed).with_rsl_cap(cap),
            )
            .run(&circuit)
            .expect("baseline planning succeeds");

            // OnePerc: randomness-aware compilation through a session.
            let session = Session::new(CompilerConfig::for_qubits(qubits, p, seed));
            let compiled = session.compile(&circuit).expect("oneperc compilation succeeds");
            let ours = session.execute_report(&compiled);

            let baseline_rsl = if baseline.saturated {
                format!("> {cap}")
            } else {
                baseline.rsl_consumed.to_string()
            };
            println!(
                "{:<6.2} {:<10} {:>12} {:>12} {:>12.1}",
                p,
                format!("{bench}-{qubits}"),
                baseline_rsl,
                ours.rsl_consumed,
                baseline.rsl_consumed as f64 / ours.rsl_consumed.max(1) as f64,
            );
        }
    }
    println!("\nOneQ saturates (hits the RSL cap) once fusion failures make whole-program retries hopeless;");
    println!("OnePerc keeps #RSL bounded because percolation and reshaping absorb the randomness.");
}
