//! Auto-tune the compiler configuration for a QAOA instance: span a
//! lattice of candidate knob settings, let the tuner evaluate them over
//! the warm multi-tenant fleet with online Pareto pruning, then reuse
//! the cached frontier artifact and run the recommended configuration.
//!
//! Run with `cargo run --release --example tune_qaoa` (the tuner
//! executes real seed sweeps; debug builds are slow).

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::tune::{ConfigLattice, TuneSource, Tuner};

fn main() {
    let circuit = benchmarks::qaoa(4, 42);

    // Three knobs around the 4-qubit Table 1 preset at p = 0.90: how
    // many redundant temporal ports to plan, whether to pipeline layer
    // generation, and whether to refresh the virtual hardware
    // periodically. 2 x 2 x 2 = 8 candidate configurations.
    let lattice = ConfigLattice::new(CompilerConfig::for_qubits(4, 0.9, 1))
        .with_temporal_redundancies(&[2, 3])
        .with_pipelining(&[false, true])
        .with_refresh_periods(&[None, Some(6)]);
    println!("lattice: {} points over {} knobs", lattice.len(), lattice.knob_count());

    // Evaluation fans out over the warm fleet: 2 lanes per session, up
    // to 2 points in flight, dominated in-flight points cancelled
    // mid-run. Artifacts persist under target/ so a rerun of this
    // example is a disk cache hit.
    let dir = std::path::Path::new("target").join("tune-artifacts");
    let mut tuner = Tuner::builder(lattice)
        .seeds(&[1, 2, 3, 4])
        .lanes(2)
        .concurrent_points(2)
        .artifact_dir(&dir)
        .build();

    let outcome = tuner.tune(&circuit).expect("tuning succeeds");
    println!(
        "tune source: {:?} — {} evaluated, {} pruned before submission, {} shed in flight",
        outcome.source,
        outcome.stats.points_evaluated,
        outcome.stats.points_pruned_static,
        outcome.stats.points_shed_inflight,
    );

    println!("\nPareto frontier ({} objectives):", outcome.artifact.objectives.len());
    for point in &outcome.artifact.frontier {
        println!(
            "  temporal={} pipelined={:<5} refresh={:<7} cost={:?}",
            point.config.temporal_redundancy,
            point.config.pipelined,
            format!("{:?}", point.config.refresh_period),
            point.cost,
        );
    }

    // Re-tuning the same question is a cache hit: nothing executes.
    let again = tuner.tune(&circuit).expect("cached tune succeeds");
    assert_eq!(again.source, TuneSource::MemoryCache);
    assert_eq!(again.json, outcome.json, "the cache returns the stored bytes");
    println!("\nre-tune answered from {:?} in {:?}", again.source, again.stats.wall);

    // The recommendation rebuilds into a runnable config (pick any seed;
    // the artifact is seed-free).
    let best = outcome.artifact.recommended.to_config(42);
    let session = Session::new(best);
    let compiled = session.compile(&circuit).expect("offline mapping succeeds");
    let report = session.execute(&compiled, 42).into_report();
    println!(
        "\nrecommended config: temporal={} pipelined={} refresh={:?} -> {} RSLs, {:.1} RSL/layer",
        best.temporal_redundancy,
        best.pipelined,
        best.refresh_period,
        report.rsl_consumed,
        report.rsl_per_logical_layer(),
    );
}
