//! Domain example: compile a Cuccaro ripple-carry adder and inspect the
//! intermediate artifacts of every stage — circuit, program graph state,
//! dependency DAG, FlexLattice IR, instruction stream and execution report.
//!
//! Run with `cargo run --release --example adder_compile`.

use oneperc_suite::circuit::{benchmarks, ProgramGraph};
use oneperc_suite::compiler::{CompilerConfig, Session};
use oneperc_suite::ir::InstructionInterpreter;

fn main() {
    // A 6-qubit ripple-carry adder (two 2-bit operands plus carry-in and
    // carry-out).
    let circuit = benchmarks::rca(6);
    println!(
        "circuit: {} qubits, {} gates ({} CZ after lowering)",
        circuit.n_qubits(),
        circuit.len(),
        circuit.cz_count()
    );

    // Stage 1: MBQC translation.
    let program = ProgramGraph::from_circuit(&circuit);
    println!(
        "program graph state: {} nodes, {} edges, {} measured qubits",
        program.node_count(),
        program.edge_count(),
        program.measured_count()
    );

    // Stage 2: dependency analysis (flow-induced partial order).
    let dag = program.dependency_dag();
    println!(
        "dependency DAG: {} ordering constraints, initial front layer of {} nodes",
        dag.edge_count(),
        dag.scheduler().front().len()
    );

    // Stage 3 + 4: offline mapping and online execution through a warm
    // compiler session.
    let config = CompilerConfig::for_qubits(circuit.n_qubits(), 0.75, 11);
    let session = Session::new(config);
    let compiled = session.compile(&circuit).expect("mapping succeeds");
    let stats = &compiled.mapping.stats;
    println!(
        "offline mapping: {} layers, {} ancillas, {} spatial edges, {} temporal edges ({} cross-layer)",
        stats.layers, stats.ancilla_nodes, stats.spatial_edges, stats.temporal_edges, stats.cross_layer_edges
    );

    // The instruction stream is validated against the virtual-hardware
    // rules before execution.
    let mut interpreter = InstructionInterpreter::new();
    interpreter
        .run(&compiled.mapping.instructions)
        .expect("instruction stream is well-formed");
    println!(
        "instruction stream: {} instructions, all accepted by the interpreter",
        compiled.mapping.instructions.len()
    );

    match session.execute(&compiled, config.seed) {
        outcome if outcome.is_complete() => {
            println!("\nexecution report:\n{}", outcome.report());
        }
        outcome => {
            let failure = outcome.failure().expect("incomplete outcome names its failure");
            println!("\nexecution incomplete: {failure}");
        }
    }
}
