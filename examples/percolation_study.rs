//! Study of the online pass in isolation: how the fusion success
//! probability and the average node size drive the 2D renormalization
//! success rate, and what the modular variant trades for its latency win.
//!
//! Run with `cargo run --release --example percolation_study`.

use std::time::Instant;

use oneperc_suite::hardware::{FusionEngine, HardwareConfig};
use oneperc_suite::percolation::{renormalize, ModularConfig, ModularRenormalizer};

fn main() {
    let rsl = 96;
    let trials = 8;

    // Renormalization success rate vs node size (the Fig. 16 experiment at
    // reduced scale).
    println!("renormalization success rate on a {rsl}x{rsl} RSL ({trials} trials):");
    println!("{:>10} {:>8} {:>8} {:>8}", "node size", "p=0.66", "p=0.72", "p=0.78");
    for node_size in [4usize, 8, 12, 16, 24] {
        print!("{node_size:>10}");
        for p in [0.66, 0.72, 0.78] {
            let mut ok = 0;
            for t in 0..trials {
                let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, p), t);
                let layer = engine.generate_layer();
                if renormalize(&layer, node_size).is_success() {
                    ok += 1;
                }
            }
            print!(" {:>8.2}", ok as f64 / trials as f64);
        }
        println!();
    }

    // Modular renormalization: latency vs joined-node overhead.
    println!("\nmodular renormalization of one {rsl}x{rsl} layer (p = 0.75, node size 6, MI ratio 7):");
    let mut engine = FusionEngine::new(HardwareConfig::new(rsl, 7, 0.75), 99);
    let layer = engine.generate_layer();

    // Read-only percolation statistics through the CSR snapshot.
    let csr = layer.to_csr();
    println!(
        "  layer graph: {} bonds, {} components, giant component covers {:.0}% of sites",
        csr.edge_count(),
        csr.component_count(),
        100.0 * csr.largest_component_size() as f64 / layer.site_count() as f64
    );

    let start = Instant::now();
    let non_modular = renormalize(&layer, 6).node_count();
    let t_non_modular = start.elapsed();
    println!(
        "  non-modular: {non_modular} coarse nodes in {:.1} ms",
        t_non_modular.as_secs_f64() * 1e3
    );

    // Streaming use: hold the layer in an Arc and keep one renormalizer
    // (with its persistent worker pool) alive, as the online pass does —
    // the first run pays pool construction, later runs reuse it.
    let layer = std::sync::Arc::new(layer);
    for modules_per_side in [2usize, 3] {
        let config = ModularConfig::new(modules_per_side, 7, 6);
        let mut renormalizer = ModularRenormalizer::new(config);
        let outcome = renormalizer.run_shared(&layer); // warm: spawns the pool
        let start = Instant::now();
        let outcome_warm = renormalizer.run_shared(&layer);
        let elapsed = start.elapsed();
        assert_eq!(outcome.joined_nodes, outcome_warm.joined_nodes);
        println!(
            "  {} modules:   {} coarse nodes in {:.1} ms ({:.0}% of the non-modular yield)",
            modules_per_side * modules_per_side,
            outcome.joined_nodes,
            elapsed.as_secs_f64() * 1e3,
            100.0 * outcome.joined_nodes as f64 / non_modular.max(1) as f64
        );
    }
    println!("\nthe modular pass trades a fraction of the renormalized nodes for a large latency");
    println!("reduction, which is what keeps the online pass inside the photon lifetime.");
}
