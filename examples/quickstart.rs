//! Quickstart: build a compiler session, compile a small QAOA program
//! once, batch-execute a seed sweep through the warm pipeline, then let
//! the content-addressed program cache and the async front-end do the
//! compile-once bookkeeping automatically.
//!
//! Run with `cargo run --example quickstart`.

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::service::{block_on, AsyncSession};
use oneperc_suite::compiler::{CompilerConfig, Session};

fn main() {
    // A 4-qubit QAOA max-cut instance on a random graph (the smallest
    // benchmark of the paper's evaluation).
    let circuit = benchmarks::qaoa(4, 42);
    println!("input circuit:\n{circuit}");

    // Table 1 sizing for 4 qubits at the practical fusion success
    // probability of 0.75: a 2x2 virtual hardware on a 48x48 RSL built from
    // 4-qubit star resource states. The session owns the warm execution
    // context — a persistent lane engine plus two renormalization pool
    // workers — for as long as it lives.
    let config = CompilerConfig::for_qubits(4, 0.75, 42).with_renorm_workers(2);
    let session = Session::new(config);

    // Offline pass, once per circuit: program graph state → FlexLattice IR
    // → instructions.
    let compiled = session.compile(&circuit).expect("offline mapping succeeds");
    println!(
        "offline pass: {} program nodes mapped onto {} virtual-hardware layers, {} instructions",
        compiled.mapping.stats.program_nodes,
        compiled.layer_count(),
        compiled.mapping.instructions.len(),
    );
    println!("first instructions of the stream:");
    for instruction in compiled.mapping.instructions.instructions().iter().take(8) {
        println!("  {instruction}");
    }

    // Online pass, once per seed: stochastic fusions, percolation,
    // renormalization and time-like connections until every logical layer
    // is formed. The whole sweep reuses the warm engine — only the RNG
    // stream restarts between runs.
    let seeds: Vec<u64> = (42..50).collect();
    let outcomes = session.execute_batch(&compiled, &seeds);
    println!("\nseed sweep over {} seeds:", seeds.len());
    println!("{:>6} {:>10} {:>12} {:>10}", "seed", "#RSL", "#fusion", "PL ratio");
    for (seed, outcome) in seeds.iter().zip(&outcomes) {
        let report = outcome.report();
        println!(
            "{seed:>6} {:>10} {:>12} {:>10.2}",
            report.rsl_consumed,
            report.fusions,
            report.pl_ratio()
        );
    }

    // Full report of the first run; a typed failure would name the starved
    // logical layer instead of a silent `complete: false`.
    match &outcomes[0] {
        outcome if outcome.is_complete() => {
            println!("\nfirst execution report:\n{}", outcome.report());
        }
        outcome => {
            let failure = outcome.failure().expect("incomplete outcome names its failure");
            println!("\nexecution incomplete: {failure}");
        }
    }

    // --- Cached multi-seed sweeps -----------------------------------------
    //
    // The offline pass above is deterministic per (circuit, config) — only
    // the online pass consumes randomness — so `Session::sweep` resolves
    // the circuit through a content-addressed program cache instead of
    // asking the caller to hold the compiled artifact. The first sweep
    // compiles; every later sweep of the same circuit is a cache hit and
    // goes straight to execution.
    let sweep_seeds: Vec<u64> = (100..108).collect();
    let cached = session.sweep(&circuit, &sweep_seeds).expect("offline mapping succeeds");
    let again = session.sweep(&circuit, &sweep_seeds).expect("cache hit recompiles nothing");
    assert_eq!(cached.len(), again.len());
    println!("\ncached sweeps: program cache {}", session.cache_stats());

    // The async front-end wraps the same warm machinery for embedding in
    // an RPC server: bounded admission (`try_submit` answers Busy instead
    // of queueing without limit) and completion as plain std futures —
    // here drained with the built-in hand-rolled `block_on`.
    let service = AsyncSession::builder(config).lanes(2).queue_depth(4).build();
    let futures = service.sweep(&circuit, &sweep_seeds).expect("offline mapping succeeds");
    let total_rsl: u64 = futures
        .into_iter()
        .map(|future| block_on(future).report().rsl_consumed)
        .sum();
    println!(
        "async sweep over {} seeds consumed {total_rsl} RSLs; compiled {} time(s)",
        sweep_seeds.len(),
        service.cache_stats().misses
    );
}
