//! Quickstart: compile and execute a small QAOA program with OnePerc.
//!
//! Run with `cargo run --example quickstart`.

use oneperc_suite::circuit::benchmarks;
use oneperc_suite::compiler::{Compiler, CompilerConfig};

fn main() {
    // A 4-qubit QAOA max-cut instance on a random graph (the smallest
    // benchmark of the paper's evaluation).
    let circuit = benchmarks::qaoa(4, 42);
    println!("input circuit:\n{circuit}");

    // Table 1 sizing for 4 qubits at the practical fusion success
    // probability of 0.75: a 2x2 virtual hardware on a 48x48 RSL built from
    // 4-qubit star resource states.
    let config = CompilerConfig::for_qubits(4, 0.75, 42);
    let compiler = Compiler::new(config);

    // Offline pass: program graph state -> FlexLattice IR -> instructions.
    let compiled = compiler.compile(&circuit).expect("offline mapping succeeds");
    println!(
        "offline pass: {} program nodes mapped onto {} virtual-hardware layers, {} instructions",
        compiled.mapping.stats.program_nodes,
        compiled.layer_count(),
        compiled.mapping.instructions.len(),
    );
    println!("first instructions of the stream:");
    for instruction in compiled.mapping.instructions.instructions().iter().take(8) {
        println!("  {instruction}");
    }

    // Online pass: stochastic fusions, percolation, renormalization and
    // time-like connections until every logical layer is formed.
    let report = compiler.execute(&compiled);
    println!("\nexecution report:\n{report}");
    println!(
        "\nthe program consumed {} resource-state layers ({} fusions) at fusion success probability {}",
        report.rsl_consumed,
        report.fusions,
        config.hardware.fusion_success_prob
    );
}
